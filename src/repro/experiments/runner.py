"""The experiment runner: memoised pipeline from benchmark name to results.

The pipeline stages and what they depend on (anything not in the key is
reused across experiments — the big win is that *block traces* are layout-
and geometry-independent, and *line-event traces* are geometry-independent,
so sweeping nine cache configurations re-simulates only the cache stage):

========================  =============================================
stage                      cache key
========================  =============================================
workload (synth program)   benchmark
profile (small input)      benchmark
layout                     benchmark, policy
block trace (large input)  benchmark
line events                benchmark, policy, line size
simulation report          benchmark, scheme, geometry, wpa, options
========================  =============================================

Two caches back the memoisation:

* an in-process dict per stage (as before);
* a **persistent** :class:`~repro.engine.store.TraceStore` (default
  ``.repro_cache/``, override or disable with ``REPRO_CACHE_DIR``) holding
  profiles, block traces, and line-event traces keyed by content — a fresh
  process with a warm cache performs no CFG walks at all.

Instruction budgets default to 400k evaluated / 100k profiled instructions
per benchmark and can be overridden by the ``REPRO_EVAL_INSTRUCTIONS`` /
``REPRO_PROFILE_INSTRUCTIONS`` environment variables (the harness trades
trace length for wall-clock time; results are stable well below the
defaults because the workloads are stationary loop nests).

For sweeping many (benchmark, scheme, geometry) cells at once, use
:meth:`ExperimentRunner.run_grid`, which fans cells across worker
processes chunked by benchmark (see :mod:`repro.engine.grid`).
"""

from __future__ import annotations

import dataclasses
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:
    from repro.analysis.absint.prune import PruneCertificate
    from repro.cache.geometry import CacheGeometry

from repro.energy.params import EnergyParams
from repro.engine.batch import BatchMember, batch_counters
from repro.engine.differential import differential_counters
from repro.engine.grid import GridCell, run_grid
from repro.engine.store import TraceStore, layout_digest, program_digest
from repro.errors import ExperimentError
from repro.resilience.chaos import chaos_point
from repro.layout.layouts import Layout
from repro.layout.placement import LayoutPolicy, make_layout
from repro.profiling.profile_data import ProfileData
from repro.resilience.policy import FailureReport, ResilienceConfig
from repro.resilience.supervisor import GridSummary
from repro.profiling.profiler import dynamic_memory_fraction, profile_block_trace
from repro.sim.machine import MachineConfig, XSCALE_BASELINE
from repro.sim.report import NormalisedResult, SimulationReport
from repro.sim.simulator import Simulator, scheme_options
from repro.trace.events import LineEventTrace
from repro.trace.executor import BlockTrace, CfgWalker
from repro.trace.fetch import line_events_from_block_trace
from repro.workloads.inputs import LARGE_INPUT, SMALL_INPUT, branch_models_for
from repro.workloads.mibench import load_benchmark
from repro.workloads.synth import Workload

__all__ = ["ExperimentRunner", "GridCell"]

_DEFAULT_EVAL_INSTRUCTIONS = 400_000
_DEFAULT_PROFILE_INSTRUCTIONS = 100_000


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        parsed = int(value)
    except ValueError:
        raise ExperimentError(f"environment variable {name}={value!r} is not an int")
    if parsed <= 0:
        raise ExperimentError(f"environment variable {name} must be positive")
    return parsed


class ExperimentRunner:
    """Memoising driver for everything the benches and figures need."""

    def __init__(
        self,
        eval_instructions: Optional[int] = None,
        profile_instructions: Optional[int] = None,
        energy_params: Optional[EnergyParams] = None,
        organisation: str = "cam",
        seed: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        engine: Optional[str] = None,
        strict: bool = False,
        sanitize: bool = False,
        resilience: Optional[ResilienceConfig] = None,
        prune: bool = False,
    ):
        self.eval_instructions = (
            eval_instructions
            if eval_instructions is not None
            else _env_int("REPRO_EVAL_INSTRUCTIONS", _DEFAULT_EVAL_INSTRUCTIONS)
        )
        self.profile_instructions = (
            profile_instructions
            if profile_instructions is not None
            else _env_int("REPRO_PROFILE_INSTRUCTIONS", _DEFAULT_PROFILE_INSTRUCTIONS)
        )
        self.energy_params = (
            energy_params if energy_params is not None else EnergyParams()
        )
        self.organisation = organisation
        self.seed = seed
        self.store = TraceStore.resolve(cache_dir)
        self.engine = engine
        self.strict = strict
        self.sanitize = sanitize
        #: Collapse statically-equivalent sweep cells before replaying
        #: (see :mod:`repro.analysis.absint.prune`).
        self.prune = prune
        self.resilience = resilience.validate() if resilience is not None else None
        #: Structured outcome of the most recent :meth:`run_grid` call.
        self.last_failures: List[FailureReport] = []
        self.last_grid: Optional[GridSummary] = None
        #: Worker side of the shared-memory trace plane: a
        #: :class:`repro.engine.plane.PlaneClient` installed by the grid
        #: worker entry points, consulted before the persistent store.
        self.plane: Optional[Any] = None
        #: Supervisor side: attachment handles published for the current
        #: parallel grid (set around ``backend.run`` by the supervisor and
        #: forwarded to workers; never part of :meth:`spawn_spec`).
        self.plane_handles: Optional[Dict[str, Any]] = None

        self._workloads: Dict[str, Workload] = {}
        self._profiles: Dict[str, ProfileData] = {}
        self._layouts: Dict[Tuple[str, LayoutPolicy], Layout] = {}
        self._block_traces: Dict[str, BlockTrace] = {}
        self._events: Dict[Tuple[str, LayoutPolicy, int], LineEventTrace] = {}
        self._mem_fractions: Dict[str, float] = {}
        self._line_starts: Dict[Tuple[str, LayoutPolicy, int], Tuple[int, ...]] = {}
        self._reports: Dict[tuple, SimulationReport] = {}
        self._digests: Dict[str, str] = {}
        self._preflighted: set = set()

    # ------------------------------------------------------------------
    # Persistent-cache keys
    # ------------------------------------------------------------------
    def _program_digest(self, benchmark: str) -> str:
        if benchmark not in self._digests:
            self._digests[benchmark] = program_digest(self.workload(benchmark).program)
        return self._digests[benchmark]

    def _profile_key(self, benchmark: str) -> str:
        return (
            f"v{TraceStore.FORMAT_VERSION}|profile|{benchmark}|"
            f"{self._program_digest(benchmark)}|input={SMALL_INPUT.name}|"
            f"seed={self.seed}|budget={self.profile_instructions}"
        )

    def _block_trace_key(self, benchmark: str) -> str:
        return (
            f"v{TraceStore.FORMAT_VERSION}|blocks|{benchmark}|"
            f"{self._program_digest(benchmark)}|input={LARGE_INPUT.name}|"
            f"seed={self.seed + 1}|budget={self.eval_instructions}"
        )

    def _events_key(
        self, benchmark: str, policy: LayoutPolicy, line_size: int
    ) -> str:
        layout = self.layout(benchmark, policy)
        return (
            f"{self._block_trace_key(benchmark)}|layout={policy.value}:"
            f"{layout_digest(layout)}|line={line_size}"
        )

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    def workload(self, benchmark: str) -> Workload:
        if benchmark not in self._workloads:
            self._workloads[benchmark] = load_benchmark(benchmark)
        return self._workloads[benchmark]

    def profile(self, benchmark: str) -> ProfileData:
        """Profile on the small (train) input, as the paper does."""
        if benchmark not in self._profiles:
            key = self._profile_key(benchmark)
            profile = self.store.load_profile(key) if self.store else None
            if profile is None:
                workload = self.workload(benchmark)
                models = branch_models_for(workload, SMALL_INPUT)
                walker = CfgWalker(workload.program, models, seed=self.seed)
                trace = walker.walk(self.profile_instructions)
                profile = profile_block_trace(
                    workload.program, trace, SMALL_INPUT.name
                )
                if self.store:
                    self.store.save_profile(key, profile)
            self._profiles[benchmark] = profile
        return self._profiles[benchmark]

    def layout(self, benchmark: str, policy: LayoutPolicy) -> Layout:
        key = (benchmark, policy)
        if key not in self._layouts:
            workload = self.workload(benchmark)
            block_counts = None
            profile = None
            if policy in (LayoutPolicy.WAY_PLACEMENT, LayoutPolicy.COLDEST_FIRST):
                block_counts = self.profile(benchmark).block_counts
            elif policy is LayoutPolicy.PETTIS_HANSEN:
                profile = self.profile(benchmark)
            self._layouts[key] = make_layout(
                workload.program, policy, block_counts, seed=self.seed, profile=profile
            )
        return self._layouts[key]

    def block_trace(self, benchmark: str) -> BlockTrace:
        """The large-input evaluation trace (layout independent)."""
        if benchmark not in self._block_traces:
            key = self._block_trace_key(benchmark)
            trace = self.plane.block_trace(key) if self.plane else None
            if trace is None and self.store:
                trace = self.store.load_block_trace(key)
            if trace is None:
                workload = self.workload(benchmark)
                models = branch_models_for(workload, LARGE_INPUT)
                walker = CfgWalker(workload.program, models, seed=self.seed + 1)
                trace = walker.walk(self.eval_instructions)
                if self.store:
                    self.store.save_block_trace(key, trace)
            self._block_traces[benchmark] = trace
        return self._block_traces[benchmark]

    def events(
        self, benchmark: str, policy: LayoutPolicy, line_size: int
    ) -> LineEventTrace:
        key = (benchmark, policy, line_size)
        if key not in self._events:
            store_key = self._events_key(benchmark, policy, line_size)
            events = self.plane.events(store_key) if self.plane else None
            if events is None and self.store:
                events = self.store.load_events(store_key)
            if events is None:
                workload = self.workload(benchmark)
                events = line_events_from_block_trace(
                    self.block_trace(benchmark),
                    workload.program,
                    self.layout(benchmark, policy),
                    line_size,
                )
                if self.store:
                    self.store.save_events(store_key, events)
            self._events[key] = events
        return self._events[key]

    def mem_fraction(self, benchmark: str) -> float:
        """Dynamic load/store share of the evaluation trace."""
        if benchmark not in self._mem_fractions:
            self._mem_fractions[benchmark] = dynamic_memory_fraction(
                self.workload(benchmark).program, self.block_trace(benchmark)
            )
        return self._mem_fractions[benchmark]

    def line_starts(
        self, benchmark: str, policy: LayoutPolicy, line_size: int
    ) -> Tuple[int, ...]:
        """Sorted distinct line-start addresses the resolved layout covers.

        A superset of the lines any trace over this layout can touch, so
        the static sweep-pruning certificates built from it are sound for
        every replay (see :mod:`repro.analysis.absint.prune`).
        """
        from repro.analysis.absint.prune import layout_line_starts

        key = (benchmark, policy, line_size)
        if key not in self._line_starts:
            layout = self.layout(benchmark, policy)
            uids = layout.block_order
            self._line_starts[key] = layout_line_starts(
                {uid: layout.address_of(uid) for uid in uids},
                {uid: layout.size_of(uid) for uid in uids},
                line_size,
            )
        return self._line_starts[key]

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_layout_policy(
        scheme: str, layout_policy: Optional[LayoutPolicy]
    ) -> LayoutPolicy:
        """The paper's default pairing: way-placement runs on the profile-
        chained binary, everything else on the original one."""
        if layout_policy is not None:
            return layout_policy
        return (
            LayoutPolicy.WAY_PLACEMENT
            if scheme == "way-placement"
            else LayoutPolicy.ORIGINAL
        )

    @staticmethod
    def _report_key(
        benchmark: str,
        scheme: str,
        machine: MachineConfig,
        wpa_size: int,
        layout_policy: LayoutPolicy,
        same_line_skip: Optional[bool],
        l0_size: int,
    ) -> tuple:
        return (
            benchmark,
            scheme,
            machine.icache,
            wpa_size,
            layout_policy,
            same_line_skip,
            l0_size if scheme == "filter-cache" else 0,
            machine.page_size,
            machine.itlb_entries,
        )

    def _cell_key(self, cell: GridCell) -> tuple:
        return self._report_key(
            cell.benchmark,
            cell.scheme,
            cell.machine,
            cell.wpa_size,
            self._resolve_layout_policy(cell.scheme, cell.layout_policy),
            cell.same_line_skip,
            cell.l0_size,
        )

    def report(
        self,
        benchmark: str,
        scheme: str,
        machine: MachineConfig = XSCALE_BASELINE,
        wpa_size: int = 0,
        layout_policy: Optional[LayoutPolicy] = None,
        same_line_skip: Optional[bool] = None,
        l0_size: int = 512,
    ) -> SimulationReport:
        """Run (or recall) one simulation.

        The layout defaults to the paper's pairing: the way-placement scheme
        runs on the profile-chained binary, everything else on the original
        one.  Pass ``layout_policy`` to break that pairing (ablations).
        """
        layout_policy = self._resolve_layout_policy(scheme, layout_policy)
        if self.strict:
            self.preflight(benchmark, layout_policy, machine, wpa_size)
        key = self._report_key(
            benchmark, scheme, machine, wpa_size, layout_policy, same_line_skip, l0_size
        )
        if key not in self._reports:
            events = self.events(benchmark, layout_policy, machine.icache.line_size)
            simulator = Simulator(
                machine,
                self.energy_params,
                self.organisation,
                engine=self.engine,
                sanitize=self.sanitize,
            )
            self._reports[key] = simulator.run_events(
                events,
                scheme,
                benchmark=benchmark,
                layout_description=self.layout(benchmark, layout_policy).description,
                wpa_size=wpa_size,
                same_line_skip=same_line_skip,
                l0_size=l0_size,
                mem_fraction=self.mem_fraction(benchmark),
            )
        return self._reports[key]

    def report_family(
        self, cells: Sequence[GridCell], engine: Optional[str] = None
    ) -> List[SimulationReport]:
        """Simulate a batch family of cells with **one** trace traversal.

        Every cell must share the family key — benchmark, resolved layout
        policy, cache geometry — so they replay the same line-event trace
        over the same set/tag decomposition (the planner,
        :func:`~repro.engine.grid.plan_families`, guarantees this; direct
        callers get an :class:`~repro.errors.ExperimentError` otherwise).
        Counters come from :func:`~repro.engine.batch.batch_counters`, or
        from :func:`~repro.engine.differential.differential_counters` when
        ``engine="differential"`` — either way bit-identical to the
        per-cell engines; each member is then priced, sanitized, and
        memoised exactly as :meth:`report` would.  Reports return in cell
        order.
        """
        if engine not in (None, "batch", "differential"):
            raise ExperimentError(
                f"report_family runs on the 'batch' or 'differential' family "
                f"tiers, not {engine!r}"
            )
        if not cells:
            return []
        first = cells[0]
        policy, geometry, members = self._family_members(cells)

        events = self.events(first.benchmark, policy, geometry.line_size)
        # Chaos hooks: "family" covers every family-tier replay (both
        # engines), "differential" only the delta-driven tier — so the
        # fault-injection harness can exercise each rung of the
        # differential -> batch -> per-cell ladder independently (no-ops
        # unless chaos is active).
        token = f"{first.benchmark}:{policy.value}:{len(cells)}"
        if engine == "differential":
            chaos_point("differential", token)
            chaos_point("family", token)
            counters_list = differential_counters(events, geometry, members)
        else:
            chaos_point("family", token)
            counters_list = batch_counters(events, geometry, members)

        layout_description = self.layout(first.benchmark, policy).description
        mem_fraction = self.mem_fraction(first.benchmark)
        reports = []
        for cell, member, counters in zip(cells, members, counters_list):
            if self.sanitize:
                from repro.verify.sanitizer import raise_if_violations, sanitize_counters

                raise_if_violations(
                    sanitize_counters(
                        cell.scheme, events, geometry, counters, dict(member.options)
                    ),
                    cell.scheme,
                )
            simulator = Simulator(
                cell.machine,
                self.energy_params,
                self.organisation,
                engine=self.engine,
                sanitize=self.sanitize,
            )
            report = simulator.price(
                counters,
                cell.scheme,
                benchmark=cell.benchmark,
                layout_description=layout_description,
                wpa_size=cell.wpa_size,
                l0_size=cell.l0_size,
                mem_fraction=mem_fraction,
            )
            self.adopt_report(cell, report)
            reports.append(report)
        return reports

    def _family_members(
        self, cells: Sequence[GridCell]
    ) -> Tuple[LayoutPolicy, "CacheGeometry", List[BatchMember]]:
        """Validate a family's shared key and build its batch members."""
        first = cells[0]
        policy = self._resolve_layout_policy(first.scheme, first.layout_policy)
        geometry = first.machine.icache
        members = []
        for cell in cells:
            cell_policy = self._resolve_layout_policy(cell.scheme, cell.layout_policy)
            if (
                cell.benchmark != first.benchmark
                or cell_policy != policy
                or cell.machine.icache != geometry
            ):
                raise ExperimentError(
                    "report_family needs cells sharing (benchmark, layout "
                    f"policy, geometry); {cell} does not match {first}"
                )
            if self.strict:
                self.preflight(cell.benchmark, cell_policy, cell.machine, cell.wpa_size)
            members.append(
                BatchMember(
                    cell.scheme,
                    scheme_options(
                        cell.machine,
                        cell.scheme,
                        wpa_size=cell.wpa_size,
                        same_line_skip=cell.same_line_skip,
                        l0_size=cell.l0_size,
                    ),
                )
            )
        return policy, geometry, members

    def report_family_pruned(
        self, cells: Sequence[GridCell], engine: Optional[str] = None
    ) -> Tuple[List[SimulationReport], Optional["PruneCertificate"]]:
        """:meth:`report_family` behind a static sweep-pruning certificate.

        Plans a :class:`~repro.analysis.absint.prune.PruneCertificate` over
        the family: members whose configurations are statically proven
        outcome-equivalent (their WPA thresholds cut the layout's line
        addresses at the same place) collapse to one representative, only
        representatives replay, and pruned cells are reconstructed from
        their representative's counters — bit-identical by construction —
        then re-priced with their own metadata.  Returns the reports in
        cell order plus the certificate applied (``None`` when nothing was
        prunable).  The certificate is re-validated before use; a mismatch
        raises so the supervisor's degradation ladder can fall back to
        unpruned execution.
        """
        from repro.analysis.absint.prune import plan_prune

        if not cells:
            return [], None
        first = cells[0]
        policy, geometry, members = self._family_members(cells)
        # Chaos site "prune" lets the fault-injection harness knock this
        # rung out and prove the supervisor degrades to unpruned replay.
        token = f"{first.benchmark}:{policy.value}:{len(cells)}"
        chaos_point("prune", token)
        line_starts = self.line_starts(first.benchmark, policy, geometry.line_size)
        certificate = plan_prune(line_starts, members)
        if certificate is None:
            return self.report_family(cells, engine=engine), None
        if not certificate.validate(members):
            raise ExperimentError(
                f"prune certificate no longer matches family {token}"
            )
        representatives = certificate.representatives
        rep_reports = self.report_family(
            [cells[index] for index in representatives], engine=engine
        )
        report_of = dict(zip(representatives, rep_reports))
        reports = []
        for index, cell in enumerate(cells):
            source_index = certificate.clone_of[index]
            if source_index == index:
                reports.append(report_of[index])
            else:
                reports.append(self._pruned_report(cell, report_of[source_index]))
        return reports, certificate

    def _pruned_report(
        self, cell: GridCell, source: SimulationReport
    ) -> SimulationReport:
        """Reconstruct a pruned cell from its representative's counters."""
        counters = dataclasses.replace(source.counters)
        simulator = Simulator(
            cell.machine,
            self.energy_params,
            self.organisation,
            engine=self.engine,
            sanitize=self.sanitize,
        )
        report = simulator.price(
            counters,
            cell.scheme,
            benchmark=cell.benchmark,
            layout_description=source.layout_description,
            wpa_size=cell.wpa_size,
            l0_size=cell.l0_size,
            mem_fraction=self.mem_fraction(cell.benchmark),
        )
        self.adopt_report(cell, report)
        return report

    def normalised(
        self,
        benchmark: str,
        scheme: str,
        machine: MachineConfig = XSCALE_BASELINE,
        wpa_size: int = 0,
        layout_policy: Optional[LayoutPolicy] = None,
        same_line_skip: Optional[bool] = None,
    ) -> NormalisedResult:
        """A scheme's result normalised to the plain baseline on ``machine``."""
        baseline = self.report(benchmark, "baseline", machine)
        run = self.report(
            benchmark,
            scheme,
            machine,
            wpa_size=wpa_size,
            layout_policy=layout_policy,
            same_line_skip=same_line_skip,
        )
        return run.normalise(baseline)

    # ------------------------------------------------------------------
    # Strict pre-flight (static analysis before simulation)
    # ------------------------------------------------------------------
    def preflight(
        self,
        benchmark: str,
        layout_policy: LayoutPolicy,
        machine: MachineConfig = XSCALE_BASELINE,
        wpa_size: int = 0,
    ) -> None:
        """Lint the program, layout, and config behind one simulation.

        Raises :class:`~repro.errors.AnalysisError` when any error-severity
        diagnostic is found; called automatically before every simulation
        when the runner was built with ``strict=True``.  Results are
        memoised per (benchmark, layout, geometry, WPA) so sweeps pay the
        analysis once.
        """
        from repro.analysis import AnalysisContext, Analyzer

        key = (benchmark, layout_policy, machine.icache, wpa_size)
        if key in self._preflighted:
            return
        context = AnalysisContext.for_experiment(
            program=self.workload(benchmark).program,
            layout=self.layout(benchmark, layout_policy),
            block_counts=self.profile(benchmark).block_counts,
            edge_counts=self.profile(benchmark).edge_counts,
            geometry=machine.icache,
            wpa_size=wpa_size or None,
            page_size=machine.page_size,
            energy=self.energy_params,
            subject=benchmark,
        )
        Analyzer().check_errors(
            context,
            f"benchmark {benchmark!r} ({layout_policy.value} layout, "
            f"WPA {wpa_size}B)",
        )
        self._preflighted.add(key)

    # ------------------------------------------------------------------
    # Parallel grids
    # ------------------------------------------------------------------
    def has_report(self, cell: GridCell) -> bool:
        """Is this cell's simulation already memoised?"""
        return self._cell_key(cell) in self._reports

    def adopt_report(self, cell: GridCell, report: SimulationReport) -> None:
        """Memoise a report computed elsewhere (a grid worker) for ``cell``."""
        self._reports[self._cell_key(cell)] = report

    def spawn_spec(self) -> dict:
        """Constructor kwargs reproducing this runner in a worker process."""
        return {
            "eval_instructions": self.eval_instructions,
            "profile_instructions": self.profile_instructions,
            "energy_params": self.energy_params,
            "organisation": self.organisation,
            "seed": self.seed,
            "cache_dir": str(self.store.root) if self.store else "off",
            "engine": self.engine,
            "strict": self.strict,
            "sanitize": self.sanitize,
            "prune": self.prune,
        }

    def publish_plane(self, arena: Any, cells: Sequence[GridCell]) -> int:
        """Publish these cells' *warm* trace arrays into a shared arena.

        Best effort, warm-only: an artifact is published only when it is
        already resident in this process or loadable from the persistent
        store — a cold benchmark is left to the workers, which derive and
        persist it exactly as before, so publication never serialises cold
        derivation in the supervisor.  Returns the number of segments
        published; any per-artifact failure simply skips that artifact.
        """
        published = 0
        combos: Dict[str, List[Tuple[LayoutPolicy, int]]] = {}
        for cell in cells:
            try:
                policy = self._resolve_layout_policy(cell.scheme, cell.layout_policy)
            except Exception:
                continue
            pairs = combos.setdefault(cell.benchmark, [])
            pair = (policy, cell.machine.icache.line_size)
            if pair not in pairs:
                pairs.append(pair)
        for benchmark, pairs in combos.items():
            try:
                key = self._block_trace_key(benchmark)
                trace = self._block_traces.get(benchmark)
                if trace is None and self.store is not None:
                    trace = self.store.load_block_trace(key)
                    if trace is not None:
                        self._block_traces[benchmark] = trace
                if trace is None:
                    continue  # cold benchmark: workers derive as usual
                published += arena.publish_block_trace(key, trace)
                for policy, line_size in pairs:
                    memo = (benchmark, policy, line_size)
                    events_key = self._events_key(benchmark, policy, line_size)
                    events = self._events.get(memo)
                    if events is None and self.store is not None:
                        events = self.store.load_events(events_key)
                        if events is not None:
                            self._events[memo] = events
                    if events is not None:
                        published += arena.publish_events(events_key, events)
            except Exception:
                continue
        return published

    def run_grid(
        self,
        cells: Sequence[GridCell],
        jobs: int = 1,
        resilience: Optional[ResilienceConfig] = None,
    ) -> List[SimulationReport]:
        """Simulate many cells, fanning across ``jobs`` worker processes.

        Cells are chunked by benchmark so each worker derives (or loads from
        the persistent cache) every trace at most once; results land in this
        runner's memo and come back in input order.  ``jobs <= 1`` runs
        serially in-process.

        Execution is supervised (retry/backoff, engine fallback, worker
        crash isolation, checkpoint–resume) according to ``resilience``,
        defaulting to this runner's own config; see
        :mod:`repro.resilience.supervisor`.  Afterwards
        ``self.last_grid`` / ``self.last_failures`` describe what happened.
        """
        return run_grid(
            self, cells, jobs=jobs, resilience=resilience or self.resilience
        )
