"""The experiment runner: memoised pipeline from benchmark name to results.

The pipeline stages and what they depend on (anything not in the key is
reused across experiments — the big win is that *block traces* are layout-
and geometry-independent, and *line-event traces* are geometry-independent,
so sweeping nine cache configurations re-simulates only the cache stage):

========================  =============================================
stage                      cache key
========================  =============================================
workload (synth program)   benchmark
profile (small input)      benchmark
layout                     benchmark, policy
block trace (large input)  benchmark
line events                benchmark, policy, line size
simulation report          benchmark, scheme, geometry, wpa, options
========================  =============================================

Instruction budgets default to 400k evaluated / 100k profiled instructions
per benchmark and can be overridden by the ``REPRO_EVAL_INSTRUCTIONS`` /
``REPRO_PROFILE_INSTRUCTIONS`` environment variables (the harness trades
trace length for wall-clock time; results are stable well below the
defaults because the workloads are stationary loop nests).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.energy.params import EnergyParams
from repro.errors import ExperimentError
from repro.layout.layouts import Layout
from repro.layout.placement import LayoutPolicy, make_layout
from repro.profiling.profile_data import ProfileData
from repro.profiling.profiler import dynamic_memory_fraction, profile_block_trace
from repro.sim.machine import MachineConfig, XSCALE_BASELINE
from repro.sim.report import NormalisedResult, SimulationReport
from repro.sim.simulator import Simulator
from repro.trace.events import LineEventTrace
from repro.trace.executor import BlockTrace, CfgWalker
from repro.trace.fetch import line_events_from_block_trace
from repro.workloads.inputs import LARGE_INPUT, SMALL_INPUT, branch_models_for
from repro.workloads.mibench import load_benchmark
from repro.workloads.synth import Workload

__all__ = ["ExperimentRunner"]

_DEFAULT_EVAL_INSTRUCTIONS = 400_000
_DEFAULT_PROFILE_INSTRUCTIONS = 100_000


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        parsed = int(value)
    except ValueError:
        raise ExperimentError(f"environment variable {name}={value!r} is not an int")
    if parsed <= 0:
        raise ExperimentError(f"environment variable {name} must be positive")
    return parsed


class ExperimentRunner:
    """Memoising driver for everything the benches and figures need."""

    def __init__(
        self,
        eval_instructions: Optional[int] = None,
        profile_instructions: Optional[int] = None,
        energy_params: EnergyParams = EnergyParams(),
        organisation: str = "cam",
        seed: int = 1,
    ):
        self.eval_instructions = (
            eval_instructions
            if eval_instructions is not None
            else _env_int("REPRO_EVAL_INSTRUCTIONS", _DEFAULT_EVAL_INSTRUCTIONS)
        )
        self.profile_instructions = (
            profile_instructions
            if profile_instructions is not None
            else _env_int("REPRO_PROFILE_INSTRUCTIONS", _DEFAULT_PROFILE_INSTRUCTIONS)
        )
        self.energy_params = energy_params
        self.organisation = organisation
        self.seed = seed

        self._workloads: Dict[str, Workload] = {}
        self._profiles: Dict[str, ProfileData] = {}
        self._layouts: Dict[Tuple[str, LayoutPolicy], Layout] = {}
        self._block_traces: Dict[str, BlockTrace] = {}
        self._events: Dict[Tuple[str, LayoutPolicy, int], LineEventTrace] = {}
        self._mem_fractions: Dict[str, float] = {}
        self._reports: Dict[tuple, SimulationReport] = {}

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    def workload(self, benchmark: str) -> Workload:
        if benchmark not in self._workloads:
            self._workloads[benchmark] = load_benchmark(benchmark)
        return self._workloads[benchmark]

    def profile(self, benchmark: str) -> ProfileData:
        """Profile on the small (train) input, as the paper does."""
        if benchmark not in self._profiles:
            workload = self.workload(benchmark)
            models = branch_models_for(workload, SMALL_INPUT)
            walker = CfgWalker(workload.program, models, seed=self.seed)
            trace = walker.walk(self.profile_instructions)
            self._profiles[benchmark] = profile_block_trace(
                workload.program, trace, SMALL_INPUT.name
            )
        return self._profiles[benchmark]

    def layout(self, benchmark: str, policy: LayoutPolicy) -> Layout:
        key = (benchmark, policy)
        if key not in self._layouts:
            workload = self.workload(benchmark)
            block_counts = None
            if policy in (LayoutPolicy.WAY_PLACEMENT, LayoutPolicy.COLDEST_FIRST):
                block_counts = self.profile(benchmark).block_counts
            self._layouts[key] = make_layout(
                workload.program, policy, block_counts, seed=self.seed
            )
        return self._layouts[key]

    def block_trace(self, benchmark: str) -> BlockTrace:
        """The large-input evaluation trace (layout independent)."""
        if benchmark not in self._block_traces:
            workload = self.workload(benchmark)
            models = branch_models_for(workload, LARGE_INPUT)
            walker = CfgWalker(workload.program, models, seed=self.seed + 1)
            self._block_traces[benchmark] = walker.walk(self.eval_instructions)
        return self._block_traces[benchmark]

    def events(
        self, benchmark: str, policy: LayoutPolicy, line_size: int
    ) -> LineEventTrace:
        key = (benchmark, policy, line_size)
        if key not in self._events:
            workload = self.workload(benchmark)
            self._events[key] = line_events_from_block_trace(
                self.block_trace(benchmark),
                workload.program,
                self.layout(benchmark, policy),
                line_size,
            )
        return self._events[key]

    def mem_fraction(self, benchmark: str) -> float:
        """Dynamic load/store share of the evaluation trace."""
        if benchmark not in self._mem_fractions:
            self._mem_fractions[benchmark] = dynamic_memory_fraction(
                self.workload(benchmark).program, self.block_trace(benchmark)
            )
        return self._mem_fractions[benchmark]

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def report(
        self,
        benchmark: str,
        scheme: str,
        machine: MachineConfig = XSCALE_BASELINE,
        wpa_size: int = 0,
        layout_policy: Optional[LayoutPolicy] = None,
        same_line_skip: Optional[bool] = None,
        l0_size: int = 512,
    ) -> SimulationReport:
        """Run (or recall) one simulation.

        The layout defaults to the paper's pairing: the way-placement scheme
        runs on the profile-chained binary, everything else on the original
        one.  Pass ``layout_policy`` to break that pairing (ablations).
        """
        if layout_policy is None:
            layout_policy = (
                LayoutPolicy.WAY_PLACEMENT
                if scheme == "way-placement"
                else LayoutPolicy.ORIGINAL
            )
        key = (
            benchmark,
            scheme,
            machine.icache,
            wpa_size,
            layout_policy,
            same_line_skip,
            l0_size if scheme == "filter-cache" else 0,
            machine.page_size,
            machine.itlb_entries,
        )
        if key not in self._reports:
            events = self.events(benchmark, layout_policy, machine.icache.line_size)
            simulator = Simulator(machine, self.energy_params, self.organisation)
            self._reports[key] = simulator.run_events(
                events,
                scheme,
                benchmark=benchmark,
                layout_description=self.layout(benchmark, layout_policy).description,
                wpa_size=wpa_size,
                same_line_skip=same_line_skip,
                l0_size=l0_size,
                mem_fraction=self.mem_fraction(benchmark),
            )
        return self._reports[key]

    def normalised(
        self,
        benchmark: str,
        scheme: str,
        machine: MachineConfig = XSCALE_BASELINE,
        wpa_size: int = 0,
        layout_policy: Optional[LayoutPolicy] = None,
        same_line_skip: Optional[bool] = None,
    ) -> NormalisedResult:
        """A scheme's result normalised to the plain baseline on ``machine``."""
        baseline = self.report(benchmark, "baseline", machine)
        run = self.report(
            benchmark,
            scheme,
            machine,
            wpa_size=wpa_size,
            layout_policy=layout_policy,
            same_line_skip=same_line_skip,
        )
        return run.normalise(baseline)
