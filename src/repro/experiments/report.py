"""A one-shot reproduction report: every figure plus the paper checklist.

:func:`reproduction_report` runs the full evaluation through a runner and
renders a single markdown document — the figures as preformatted tables, a
headline summary, and an explicit pass/fail checklist against the paper's
stated results.  The CLI exposes it as ``python -m repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments.figures import figure4, figure5, figure6
from repro.experiments.runner import ExperimentRunner

__all__ = ["ChecklistItem", "reproduction_report", "paper_checklist"]

_KB = 1024


@dataclass(frozen=True)
class ChecklistItem:
    """One paper claim and whether the reproduction satisfies it."""

    claim: str
    measured: str
    passed: bool


def paper_checklist(fig4, fig5, fig6) -> List[ChecklistItem]:
    """Evaluate the paper's stated results against measured figures."""
    items: List[ChecklistItem] = []

    placement = fig4.mean_placement_energy
    items.append(
        ChecklistItem(
            claim="Figure 4: way-placement energy savings approach 50%",
            measured=f"mean energy {100 * placement:.1f}% of baseline",
            passed=0.44 <= placement <= 0.58,
        )
    )
    memo = fig4.mean_memoization_energy
    items.append(
        ChecklistItem(
            claim="Figure 4: way-memoization saves ~32% (energy ~68%)",
            measured=f"mean energy {100 * memo:.1f}% of baseline",
            passed=0.60 <= memo <= 0.74,
        )
    )
    ed = fig4.mean_placement_ed
    items.append(
        ChecklistItem(
            claim="Figure 4: mean ED product 0.93",
            measured=f"mean ED {ed:.3f}",
            passed=0.91 <= ed <= 0.95,
        )
    )
    below = [
        bench
        for bench in fig4.benchmarks
        if fig4.placement[bench].ed_product < 0.90
    ]
    items.append(
        ChecklistItem(
            claim="Figure 4: two benchmarks below 0.9 ED",
            measured=f"{len(below)} below 0.9 ({', '.join(below) or 'none'})",
            passed=len(below) >= 1,
        )
    )
    beats = all(
        fig4.placement[b].icache_energy < fig4.memoization[b].icache_energy
        for b in fig4.benchmarks
    )
    items.append(
        ChecklistItem(
            claim="way-placement beats way-memoization on every benchmark",
            measured="all benchmarks" if beats else "NOT all benchmarks",
            passed=beats,
        )
    )

    smallest = min(fig5.wpa_sizes)
    one_kb = fig5.placement_energy[smallest]
    items.append(
        ChecklistItem(
            claim="Figure 5: a 1KB area still beats way-memoization",
            measured=(
                f"{smallest // _KB}KB area at {100 * one_kb:.1f}% vs "
                f"memoization {100 * fig5.memoization_energy:.1f}%"
            ),
            passed=one_kb < fig5.memoization_energy,
        )
    )

    best_key, best_wpa, best_ed = fig6.best_ed()
    items.append(
        ChecklistItem(
            claim="Figure 6: best ED in the largest, most associative cache",
            measured=(
                f"best ED {best_ed:.2f} at "
                f"{best_key[0] // _KB}KB/{best_key[1]}-way "
                f"({best_wpa // _KB}KB area)"
            ),
            passed=best_key == (max(fig6.cache_sizes), max(fig6.ways_list)),
        )
    )
    small_cell = fig6.cell(min(fig6.cache_sizes), min(fig6.ways_list))
    items.append(
        ChecklistItem(
            claim="Figure 6: way-memoization increases energy at 16KB/8-way",
            measured=f"{100 * small_cell.memoization_energy:.1f}% of baseline",
            passed=small_cell.memoization_energy > 1.0,
        )
    )
    big_cell = fig6.cell(max(fig6.cache_sizes), max(fig6.ways_list))
    best_energy = min(big_cell.placement_energy.values())
    items.append(
        ChecklistItem(
            claim="Figure 6: the best configuration saves >= ~55-59% energy",
            measured=f"{100 * (1 - best_energy):.1f}% saving",
            passed=best_energy <= 0.46,
        )
    )
    return items


def reproduction_report(
    runner: ExperimentRunner,
    benchmarks: Optional[Sequence[str]] = None,
    jobs: int = 1,
) -> str:
    """Render the full reproduction as one markdown document."""
    fig4 = figure4(runner, benchmarks=benchmarks, jobs=jobs)
    fig5 = figure5(runner, benchmarks=benchmarks, jobs=jobs)
    fig6 = figure6(runner, benchmarks=benchmarks, jobs=jobs)
    checklist = paper_checklist(fig4, fig5, fig6)

    passed = sum(1 for item in checklist if item.passed)
    lines = [
        "# Way-Placement Reproduction Report",
        "",
        f"Benchmarks: {len(fig4.benchmarks)}; evaluation budget: "
        f"{runner.eval_instructions:,} instructions/benchmark "
        f"(profile: {runner.profile_instructions:,}).",
        "",
        f"## Paper checklist — {passed}/{len(checklist)} reproduced",
        "",
        "| claim | measured | status |",
        "|---|---|---|",
    ]
    for item in checklist:
        status = "✓" if item.passed else "✗"
        lines.append(f"| {item.claim} | {item.measured} | {status} |")
    lines += [
        "",
        "## Figure 4 — initial evaluation",
        "",
        "```",
        fig4.render(),
        "```",
        "",
        "## Figure 5 — way-placement area sweep",
        "",
        "```",
        fig5.render(),
        "```",
        "",
        "## Figure 6 — cache configuration grid",
        "",
        "```",
        fig6.render(),
        "```",
        "",
    ]
    return "\n".join(lines)
