"""Rule registration, lookup, and ``--select``/``--ignore`` resolution.

Rules are registered once at import time into :data:`DEFAULT_REGISTRY`
via the :func:`rule` decorator.  Rule ids follow a fixed scheme — ``P``
(program), ``L`` (layout/WPA), ``C`` (config) plus a three-digit number —
and selectors match either a full id (``L004``) or a prefix (``L``), like
ruff's code selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Location, Severity
from repro.errors import AnalysisError

__all__ = ["Finding", "Rule", "RuleRegistry", "DEFAULT_REGISTRY", "rule"]


@dataclass(frozen=True)
class Finding:
    """What a rule check yields; the engine wraps it into a Diagnostic."""

    location: Location
    message: str
    suggestion: Optional[str] = None


RuleCheck = Callable[[AnalysisContext], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """A registered diagnostic rule."""

    rule_id: str
    name: str
    layer: str  # "program" | "layout" | "config"
    severity: Severity
    description: str
    check: RuleCheck


class RuleRegistry:
    """Ordered collection of rules with ruff-style selector resolution."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def register(self, new_rule: Rule) -> None:
        if new_rule.rule_id in self._rules:
            raise AnalysisError(f"duplicate rule id {new_rule.rule_id!r}")
        self._rules[new_rule.rule_id] = new_rule

    def rule(
        self,
        rule_id: str,
        name: str,
        layer: str,
        severity: Severity,
        description: str,
    ) -> Callable[[RuleCheck], RuleCheck]:
        """Decorator registering ``check`` under ``rule_id``."""

        def decorator(check: RuleCheck) -> RuleCheck:
            self.register(Rule(rule_id, name, layer, severity, description, check))
            return check

        return decorator

    # -- lookup -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __iter__(self) -> Iterator[Rule]:
        for rule_id in sorted(self._rules):
            yield self._rules[rule_id]

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise AnalysisError(f"unknown rule id {rule_id!r}") from None

    def ids(self) -> Tuple[str, ...]:
        return tuple(sorted(self._rules))

    def catalog(self) -> List[Rule]:
        """All rules in id order (for docs and ``repro lint --explain``)."""
        return list(self)

    # -- selection ----------------------------------------------------------
    def _matches(self, selector: str) -> List[str]:
        selector = selector.strip().upper()
        matched = [
            rule_id for rule_id in sorted(self._rules) if rule_id.startswith(selector)
        ]
        if not matched:
            raise AnalysisError(
                f"selector {selector!r} matches no rule "
                f"(known ids: {', '.join(self.ids())})"
            )
        return matched

    def selection(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> List[Rule]:
        """Rules enabled by ``select`` minus ``ignore`` (both optional).

        Selectors are full ids or prefixes; an empty/None ``select`` means
        every registered rule.  Unknown selectors raise
        :class:`~repro.errors.AnalysisError` rather than silently matching
        nothing.
        """
        enabled = set(self._rules)
        if select:
            enabled = set()
            for selector in select:
                enabled.update(self._matches(selector))
        if ignore:
            for selector in ignore:
                enabled.difference_update(self._matches(selector))
        return [self._rules[rule_id] for rule_id in sorted(enabled)]


DEFAULT_REGISTRY = RuleRegistry()

#: Module-level decorator used by the rule modules.
rule = DEFAULT_REGISTRY.rule
