"""repro.analysis.interference — predictive conflict analysis.

Trace-free temporal interference analysis over the ICFG: a weighted
conflict graph over cache lines (loop-nest-scaled pair weights, per-set
pressure, sound conflict-free certificates), a reference conflict replay
that decomposes misses into cold + conflict per set, and per-workload
interference certificates surfaced by ``repro analyze --interference``.

Consumers: the ``I`` lint rule layer
(:mod:`repro.analysis.rules.interference_rules`), the conflict-aware
layout optimizer (:mod:`repro.layout.conflict_aware`), and the S009
sanitizer invariant.  See ``docs/static_analysis.md``.
"""

from repro.analysis.interference.certify import (
    ConfigInterference,
    InterferenceCertificate,
    interference_workload,
    render_interference_json,
    render_interference_text,
)
from repro.analysis.interference.graph import (
    BASE,
    MAX_LOOP_DEPTH,
    InterferenceEdge,
    InterferenceGraph,
    LoopComponent,
    LoopNest,
    SetPressure,
    build_interference_graph,
    build_loop_nest,
    certify_conflict_free,
    loop_nest_for,
    predicted_conflict_weight,
)
from repro.analysis.interference.replay import (
    ConflictReplay,
    SetConflict,
    conflict_free_violations,
    conflict_replay,
    trace_certified_sets,
)

__all__ = [
    "BASE",
    "MAX_LOOP_DEPTH",
    "ConfigInterference",
    "ConflictReplay",
    "InterferenceCertificate",
    "InterferenceEdge",
    "InterferenceGraph",
    "LoopComponent",
    "LoopNest",
    "SetConflict",
    "SetPressure",
    "build_interference_graph",
    "build_loop_nest",
    "certify_conflict_free",
    "conflict_free_violations",
    "conflict_replay",
    "interference_workload",
    "loop_nest_for",
    "predicted_conflict_weight",
    "render_interference_json",
    "render_interference_text",
    "trace_certified_sets",
]
