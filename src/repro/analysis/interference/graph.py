"""Trace-free temporal interference analysis over the ICFG.

The paper's way-placement results hinge on the layout the compiler hands
the cache: two lines that share a set fight for its ways exactly when the
program revisits both while the other is still live.  This module predicts
that fight *statically* — no trace required — from three ingredients:

* the call-threading ICFG (:func:`repro.analysis.absint.analysis.absint_flow_graph`),
* a loop-nesting forest obtained by iteratively peeling strongly connected
  components (an SCC at peel level ``k`` models a loop of nesting depth
  ``k``; its headers are removed and the interior re-decomposed), and
* the block placements of a concrete layout (line addresses via
  :func:`repro.analysis.absint.analysis.block_lines`).

Two lines *interfere* when they map to the same cache set and co-reside in
a loop component — including loops threaded through call edges, so a
callee's lines interfere with its in-loop caller's lines.  The edge weight
sums ``BASE ** level × min(sites_a, sites_b)`` over every loop component
the pair shares (deeper nests dominate geometrically, mirroring the static
frequency estimate ``BASE ** depth`` used for block weights).  Weights are
keyed by line address and component *membership*, never by block uid, so
the graph is invariant under basic-block renumbering.

Way-placement awareness: when a ``wpa_size`` is given, pairs of WPA lines
with *distinct* mandated ways cannot evict each other (each fills only its
own mandated way) and contribute no interference.

Certification (:func:`certify_conflict_free`) is independent of the
frequency model and *sound* for the reference caches: a set is certified
conflict-free only if every possible access order leaves each fill in a
fresh way, so every miss is cold.  The S009 sanitizer invariant and the
23-workload validation suite hold these certificates against reference
replay (:mod:`repro.analysis.interference.replay`).

Per-set *pressure* (the sum of incident edge weights) is computed in
closed form — ``sum(min(s_i, s_j))`` over pairs equals
``sum_k asc[k] * (n - 1 - k)`` on the ascending site counts — so sets far
larger than the associativity cost ``O(n log n)``, not ``O(n^2)``.
Individual pair weights are only enumerated for groups of at most
``PAIR_ENUMERATION_CAP`` same-set lines; larger groups still contribute
exact pressure but are skipped for top-pair reporting, and the graph
records that in :attr:`InterferenceGraph.pair_enumeration_truncated`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.absint.analysis import absint_flow_graph, block_lines
from repro.analysis.context import GeometrySpec, LayoutView, ProgramView
from repro.verify.dataflow import FlowGraph, reverse_postorder

__all__ = [
    "BASE",
    "MAX_LOOP_DEPTH",
    "PAIR_ENUMERATION_CAP",
    "InterferenceEdge",
    "InterferenceGraph",
    "LoopComponent",
    "LoopNest",
    "SetPressure",
    "build_interference_graph",
    "build_loop_nest",
    "certify_conflict_free",
    "loop_nest_for",
    "predicted_conflict_weight",
]

#: Static frequency base: a block at loop depth ``d`` is assumed to run
#: ``BASE ** d`` times as often as straight-line code.
BASE = 10

#: Peeling stops here; deeper nests saturate at this depth.
MAX_LOOP_DEPTH = 8

#: Same-set line groups larger than this skip per-pair enumeration
#: (pressure stays exact via the closed form; only top-pair reporting
#: loses those — individually tiny — pairs).
PAIR_ENUMERATION_CAP = 128


@dataclass(frozen=True)
class LoopComponent:
    """One peeled SCC: a loop at nesting ``level`` (outermost = 1)."""

    level: int
    members: FrozenSet[int]


@dataclass(frozen=True)
class LoopNest:
    """Loop-nesting forest from iterated SCC peeling of the ICFG."""

    components: Tuple[LoopComponent, ...]
    #: uid -> component indices containing it, outermost first.
    paths: Mapping[int, Tuple[int, ...]]

    def depth(self, uid: int) -> int:
        """Loop depth of a block (0 = not in any cycle)."""
        return len(self.paths.get(uid, ()))

    def shared_depth(self, uid_a: int, uid_b: int) -> int:
        """Depth of the innermost loop containing both blocks (0 if none)."""
        path_a = self.paths.get(uid_a, ())
        path_b = self.paths.get(uid_b, ())
        shared = 0
        for index_a, index_b in zip(path_a, path_b):
            if index_a != index_b:
                break
            shared += 1
        return shared


@dataclass(frozen=True)
class InterferenceEdge:
    """A same-set line pair with its accumulated interference weight."""

    line_a: int
    line_b: int
    set_index: int
    depth: int
    weight: int


@dataclass(frozen=True)
class SetPressure:
    """Per-set summary: resident lines, conflict pressure, certification."""

    set_index: int
    lines: Tuple[int, ...]
    wpa_lines: Tuple[int, ...]
    pressure: int
    conflict_free: bool


@dataclass(frozen=True)
class InterferenceGraph:
    """Weighted conflict graph over the cache lines of one layout."""

    geometry: GeometrySpec
    wpa_size: int
    sets: Tuple[SetPressure, ...]
    top_pairs: Tuple[InterferenceEdge, ...]
    line_weight: Mapping[int, int]
    total_weight: int
    interfering_pairs: int
    loop_count: int
    pair_enumeration_truncated: bool

    def conflict_free_sets(self) -> Tuple[int, ...]:
        """Set indices certified conflict-free, ascending."""
        return tuple(s.set_index for s in self.sets if s.conflict_free)

    def pressure_of(self, set_index: int) -> int:
        for entry in self.sets:
            if entry.set_index == set_index:
                return entry.pressure
        return 0


def _nontrivial_sccs(
    nodes: Sequence[int],
    successors: Mapping[int, Tuple[int, ...]],
    blocked: FrozenSet[Tuple[int, int]],
) -> List[List[int]]:
    """Non-trivial SCCs (size > 1, or a self-loop) of the filtered subgraph.

    Iterative Tarjan over ``nodes`` with ``blocked`` edges removed.  Each
    component is returned sorted ascending and the list is ordered by its
    smallest member, so the decomposition is deterministic and independent
    of traversal order.
    """
    in_scope = set(nodes)
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    counter = 0
    found: List[List[int]] = []

    def edges(node: int) -> List[int]:
        return [
            succ
            for succ in successors.get(node, ())
            if succ in in_scope and (node, succ) not in blocked
        ]

    for root in sorted(in_scope):
        if root in index_of:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            children = edges(node)
            advanced = False
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index_of:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index_of[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in edges(node):
                    found.append(sorted(component))
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    found.sort(key=lambda comp: comp[0])
    return found


def _headers(component: Sequence[int], graph: FlowGraph) -> List[int]:
    """Loop headers: members entered from outside the component.

    Purely structural (full-graph predecessors plus the ICFG entry), so
    the choice is invariant under uid renumbering.  Pathological
    components with no external entry fall back to the smallest member.
    """
    members = set(component)
    heads = [
        uid
        for uid in component
        if uid == graph.entry
        or any(pred not in members for pred in graph.predecessors.get(uid, ()))
    ]
    return heads if heads else [min(component)]


def build_loop_nest(graph: FlowGraph, max_depth: int = MAX_LOOP_DEPTH) -> LoopNest:
    """Peel SCCs iteratively into a loop-nesting forest.

    Level 1 holds the non-trivial SCCs of the reachable ICFG; each is
    re-decomposed with its header back-edges removed to expose level 2,
    and so on up to ``max_depth``.
    """
    reachable = reverse_postorder(graph)
    components: List[LoopComponent] = []
    paths: Dict[int, Tuple[int, ...]] = {}
    empty: FrozenSet[Tuple[int, int]] = frozenset()
    work: List[Tuple[int, List[int], FrozenSet[Tuple[int, int]], Tuple[int, ...]]] = [
        (1, list(reachable), empty, ())
    ]
    while work:
        level, nodes, blocked, prefix = work.pop()
        for comp in _nontrivial_sccs(nodes, graph.successors, blocked):
            index = len(components)
            members = frozenset(comp)
            components.append(LoopComponent(level, members))
            path = prefix + (index,)
            for uid in comp:
                paths[uid] = path
            if level < max_depth:
                heads = _headers(comp, graph)
                back_edges = {
                    (pred, head)
                    for head in heads
                    for pred in graph.predecessors.get(head, ())
                    if pred in members
                }
                work.append((level + 1, comp, blocked | back_edges, path))
    return LoopNest(tuple(components), paths)


def certify_conflict_free(
    lines: Sequence[int], geometry: GeometrySpec, wpa_size: int
) -> bool:
    """Sound conflict-freedom certificate for one set's resident lines.

    Under the reference caches (round-robin victim pointer that advances
    only on non-explicit fills; WPA fills pinned to their mandated way),
    the set is conflict-free for *every* access order iff:

    * the non-WPA lines number at most the associativity (their first
      touches fill ways ``0 .. len(other) - 1`` in order), and
    * the WPA lines have pairwise-distinct mandated ways, all at or above
      ``len(other)`` — so pinned fills can never land on a way the
      round-robin pointer will reach.

    The condition is monotone under taking subsets of ``lines``, so a
    layout-level certificate covers any trace over that layout.
    """
    wpa_lines = [line for line in lines if line < wpa_size]
    other = [line for line in lines if line >= wpa_size]
    if len(other) > geometry.ways:
        return False
    mandated = [geometry.mandated_way(line) for line in wpa_lines]
    if len(set(mandated)) != len(mandated):
        return False
    return all(way >= len(other) for way in mandated)


def _min_pair_sum(site_counts: Sequence[int]) -> int:
    """``sum(min(s_i, s_j))`` over unordered pairs, in ``O(n log n)``."""
    ordered = sorted(site_counts)
    n = len(ordered)
    return sum(count * (n - 1 - position) for position, count in enumerate(ordered))


def _group_pressure(
    group: Mapping[int, int], geometry: GeometrySpec, wpa_size: int
) -> int:
    """Pair-weight sum for one (component, set) line group, WPA-aware.

    WPA pairs with distinct mandated ways are excluded by
    inclusion-exclusion: subtract all WPA-WPA pairs, add back the pairs
    that share a mandated way (those *do* evict each other).
    """
    total = _min_pair_sum(list(group.values()))
    if wpa_size <= 0:
        return total
    wpa_counts = [count for line, count in group.items() if line < wpa_size]
    if len(wpa_counts) >= 2:
        total -= _min_pair_sum(wpa_counts)
        by_way: Dict[int, List[int]] = {}
        for line, count in group.items():
            if line < wpa_size:
                by_way.setdefault(geometry.mandated_way(line), []).append(count)
        for shared in by_way.values():
            if len(shared) >= 2:
                total += _min_pair_sum(shared)
    return total


def build_interference_graph(
    program: ProgramView,
    layout: LayoutView,
    geometry: GeometrySpec,
    wpa_size: int = 0,
    top_k: int = 16,
) -> InterferenceGraph:
    """Construct the weighted conflict graph for one placed program."""
    graph = absint_flow_graph(program)
    line_cache: Dict[int, List[int]] = {}

    def lines_of(uid: int) -> List[int]:
        cached = line_cache.get(uid)
        if cached is None:
            cached = block_lines(uid, layout, geometry)
            line_cache[uid] = cached
        return cached

    nest = build_loop_nest(graph) if graph is not None else LoopNest((), {})
    line_weight: Dict[int, int] = {}
    if graph is not None:
        for uid in reverse_postorder(graph):
            weight = BASE ** nest.depth(uid)
            for line in lines_of(uid):
                line_weight[line] = line_weight.get(line, 0) + weight

    pressure: Dict[int, int] = {}
    pair_weight: Dict[Tuple[int, int], List[int]] = {}
    truncated = False
    for component in nest.components:
        factor = BASE**component.level
        sites: Dict[int, int] = {}
        for uid in sorted(component.members):
            for line in lines_of(uid):
                sites[line] = sites.get(line, 0) + 1
        by_set: Dict[int, Dict[int, int]] = {}
        for line, count in sites.items():
            by_set.setdefault(geometry.set_index(line), {})[line] = count
        for set_index, group in by_set.items():
            if len(group) < 2:
                continue
            group_total = _group_pressure(group, geometry, wpa_size)
            if group_total <= 0:
                continue
            pressure[set_index] = pressure.get(set_index, 0) + factor * group_total
            if len(group) > PAIR_ENUMERATION_CAP:
                truncated = True
                continue
            ordered = sorted(group)
            for position, line_a in enumerate(ordered):
                for line_b in ordered[position + 1 :]:
                    if (
                        wpa_size > 0
                        and line_a < wpa_size
                        and line_b < wpa_size
                        and geometry.mandated_way(line_a)
                        != geometry.mandated_way(line_b)
                    ):
                        continue
                    weight = factor * min(group[line_a], group[line_b])
                    entry = pair_weight.setdefault((line_a, line_b), [0, 0])
                    entry[0] += weight
                    entry[1] = max(entry[1], component.level)

    set_lines: Dict[int, Set[int]] = {}
    for uid in layout.addresses:
        for line in lines_of(uid):
            set_lines.setdefault(geometry.set_index(line), set()).add(line)

    sets = tuple(
        SetPressure(
            set_index=set_index,
            lines=tuple(sorted(lines)),
            wpa_lines=tuple(sorted(line for line in lines if line < wpa_size)),
            pressure=pressure.get(set_index, 0),
            conflict_free=certify_conflict_free(sorted(lines), geometry, wpa_size),
        )
        for set_index, lines in sorted(set_lines.items())
    )

    ranked = sorted(
        pair_weight.items(), key=lambda item: (-item[1][0], item[0][0], item[0][1])
    )
    top_pairs = tuple(
        InterferenceEdge(
            line_a=pair[0],
            line_b=pair[1],
            set_index=geometry.set_index(pair[0]),
            depth=accumulated[1],
            weight=accumulated[0],
        )
        for pair, accumulated in ranked[:top_k]
    )

    return InterferenceGraph(
        geometry=geometry,
        wpa_size=wpa_size,
        sets=sets,
        top_pairs=top_pairs,
        line_weight=line_weight,
        total_weight=sum(pressure.values()),
        interfering_pairs=len(pair_weight),
        loop_count=len(nest.components),
        pair_enumeration_truncated=truncated,
    )


def predicted_conflict_weight(
    program: ProgramView,
    layout: LayoutView,
    geometry: GeometrySpec,
    wpa_size: int = 0,
) -> int:
    """Total predicted weighted conflicts of one layout (lower is better)."""
    return build_interference_graph(program, layout, geometry, wpa_size).total_weight


def loop_nest_for(program: ProgramView) -> Optional[LoopNest]:
    """The loop-nesting forest of a program's ICFG (None without an entry)."""
    graph = absint_flow_graph(program)
    if graph is None:
        return None
    return build_loop_nest(graph)
