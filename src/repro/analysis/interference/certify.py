"""Interference certification: the ``repro analyze --interference`` back end.

An *interference certificate* for one workload bundles, per replay
configuration:

1. the static conflict graph of the placed program — total predicted
   weighted conflicts, interfering pair count, per-set pressure, and the
   top conflicting line pairs (:mod:`repro.analysis.interference.graph`);
2. the conflict-free set certificates, both layout-level (any trace) and
   trace-level (this trace's line footprint);
3. a reference conflict replay of the workload's line events
   (:mod:`repro.analysis.interference.replay`) cross-checked two ways:
   the replay's total misses must equal the engine's measured misses,
   and every certified set must show zero conflict misses; and
4. the ``I``-layer diagnostics the graph supports.

A workload is **interference clean** when both cross-checks pass in every
configuration.  The JSON rendering is byte-for-byte deterministic
(sorted keys, sorted workloads) so CI can diff consecutive runs, exactly
like ``repro analyze`` / ``repro verify``.

The three configurations mirror the paper's replay matrix plus this
package's consumer: the baseline on the original layout, way-placement
on the profile-chained layout, and way-placement on the conflict-aware
layout (:mod:`repro.layout.conflict_aware`) — so certificates also
record, per workload, how the optimizer's predicted conflict weight
compares against the profile-driven placement.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import Analyzer
from repro.analysis.interference.graph import (
    InterferenceGraph,
    build_interference_graph,
)
from repro.analysis.interference.replay import (
    ConflictReplay,
    conflict_free_violations,
    conflict_replay,
    trace_certified_sets,
)
from repro.experiments.runner import ExperimentRunner
from repro.layout.placement import LayoutPolicy
from repro.sim.machine import MachineConfig, XSCALE_BASELINE
from repro.verify.certify import fitted_wpa_size

__all__ = [
    "ConfigInterference",
    "InterferenceCertificate",
    "interference_workload",
    "render_interference_json",
    "render_interference_text",
]


@dataclass(frozen=True)
class ConfigInterference:
    """One ``(scheme, layout, wpa)`` configuration's interference verdict."""

    scheme: str
    layout_policy: str
    wpa_size: int
    graph: InterferenceGraph
    replay: ConflictReplay
    measured_misses: int
    trace_certified: Tuple[int, ...]
    #: Certified sets that replayed conflict misses (must stay empty).
    violations: Dict[int, int]

    @property
    def replay_matches(self) -> bool:
        return self.replay.total_misses == self.measured_misses

    @property
    def ok(self) -> bool:
        return self.replay_matches and not self.violations

    def to_dict(self) -> Dict[str, Any]:
        graph = self.graph
        return {
            "scheme": self.scheme,
            "layout": self.layout_policy,
            "wpa_size": self.wpa_size,
            "ok": self.ok,
            "predicted_conflict_weight": graph.total_weight,
            "interfering_pairs": graph.interfering_pairs,
            "loop_components": graph.loop_count,
            "pair_enumeration_truncated": graph.pair_enumeration_truncated,
            "sets": len(graph.sets),
            "conflict_free_sets": list(graph.conflict_free_sets()),
            "trace_certified_sets": list(self.trace_certified),
            "max_set_pressure": max((s.pressure for s in graph.sets), default=0),
            "top_pairs": [
                {
                    "lines": [edge.line_a, edge.line_b],
                    "set": edge.set_index,
                    "depth": edge.depth,
                    "weight": edge.weight,
                }
                for edge in graph.top_pairs
            ],
            "replay": {
                "total_misses": self.replay.total_misses,
                "measured_misses": self.measured_misses,
                "misses_match": self.replay_matches,
                "conflict_misses": self.replay.total_conflict_misses,
            },
            "violations": {
                str(set_index): count
                for set_index, count in sorted(self.violations.items())
            },
        }


@dataclass(frozen=True)
class InterferenceCertificate:
    """The interference analysis verdict on one workload."""

    benchmark: str
    configs: Tuple[ConfigInterference, ...]
    diagnostics: Tuple[Diagnostic, ...]

    @property
    def ok(self) -> bool:
        return all(config.ok for config in self.configs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "ok": self.ok,
            "configs": [config.to_dict() for config in self.configs],
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def _interference_config(
    runner: ExperimentRunner,
    benchmark: str,
    scheme: str,
    policy: LayoutPolicy,
    machine: MachineConfig,
    wpa_size: int,
) -> ConfigInterference:
    context = AnalysisContext.for_experiment(
        program=runner.workload(benchmark).program,
        layout=runner.layout(benchmark, policy),
        geometry=machine.icache,
        wpa_size=wpa_size or None,
        page_size=machine.page_size,
        subject=benchmark,
    )
    assert context.program is not None and context.layout is not None
    assert context.geometry is not None
    graph = build_interference_graph(
        context.program, context.layout, context.geometry, wpa_size
    )
    events = runner.events(benchmark, policy, machine.icache.line_size)
    replay = conflict_replay(events, context.geometry, wpa_size)
    certified = trace_certified_sets(events, context.geometry, wpa_size)
    report = runner.report(
        benchmark, scheme, machine, wpa_size=wpa_size, layout_policy=policy
    )
    violations = dict(conflict_free_violations(replay, certified))
    return ConfigInterference(
        scheme=scheme,
        layout_policy=policy.value,
        wpa_size=wpa_size,
        graph=graph,
        replay=replay,
        measured_misses=report.counters.misses,
        trace_certified=certified,
        violations=violations,
    )


def interference_workload(
    runner: ExperimentRunner,
    benchmark: str,
    machine: MachineConfig = XSCALE_BASELINE,
    analyzer: Optional[Analyzer] = None,
) -> InterferenceCertificate:
    """Build one workload's interference certificate (see module docstring)."""
    configs = [
        _interference_config(
            runner, benchmark, "baseline", LayoutPolicy.ORIGINAL, machine, 0
        )
    ]
    for policy in (LayoutPolicy.WAY_PLACEMENT, LayoutPolicy.CONFLICT_AWARE):
        wpa_size = fitted_wpa_size(runner, benchmark, policy, machine)
        configs.append(
            _interference_config(
                runner, benchmark, "way-placement", policy, machine, wpa_size
            )
        )
    if analyzer is None:
        analyzer = Analyzer(select=("I",))
    wpa_size = fitted_wpa_size(
        runner, benchmark, LayoutPolicy.WAY_PLACEMENT, machine
    )
    context = AnalysisContext.for_experiment(
        program=runner.workload(benchmark).program,
        layout=runner.layout(benchmark, LayoutPolicy.WAY_PLACEMENT),
        geometry=machine.icache,
        wpa_size=wpa_size or None,
        page_size=machine.page_size,
        subject=benchmark,
    )
    return InterferenceCertificate(
        benchmark=benchmark,
        configs=tuple(configs),
        diagnostics=tuple(analyzer.run(context)),
    )


def render_interference_json(certificates: List[InterferenceCertificate]) -> str:
    """Deterministic JSON report over many interference certificates."""
    ordered = sorted(certificates, key=lambda c: c.benchmark)
    payload = {
        "certificates": [certificate.to_dict() for certificate in ordered],
        "summary": {
            "total": len(ordered),
            "clean": sum(1 for c in ordered if c.ok),
            "violated": sum(1 for c in ordered if not c.ok),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_interference_text(certificates: List[InterferenceCertificate]) -> str:
    """Human-readable per-workload interference verdict lines."""
    lines: List[str] = []
    for certificate in sorted(certificates, key=lambda c: c.benchmark):
        status = "clean" if certificate.ok else "VIOLATED"
        by_layout = {config.layout_policy: config for config in certificate.configs}
        profile = by_layout.get(LayoutPolicy.WAY_PLACEMENT.value)
        aware = by_layout.get(LayoutPolicy.CONFLICT_AWARE.value)
        detail = ""
        if profile is not None and aware is not None:
            detail = (
                f"weight ph={profile.graph.total_weight} "
                f"ca={aware.graph.total_weight} "
            )
        certified = sum(len(c.trace_certified) for c in certificate.configs)
        lines.append(
            f"{certificate.benchmark:<14} {status:<9} {detail}"
            f"certified_sets={certified} "
            f"diagnostics={len(certificate.diagnostics)}"
        )
        for config in certificate.configs:
            if not config.replay_matches:
                lines.append(
                    f"    {config.scheme}/{config.layout_policy}: replay misses "
                    f"{config.replay.total_misses} != measured "
                    f"{config.measured_misses}"
                )
            for set_index, count in sorted(config.violations.items()):
                lines.append(
                    f"    {config.scheme}/{config.layout_policy}: certified set "
                    f"{set_index} replayed {count} conflict miss(es)"
                )
        for diagnostic in certificate.diagnostics:
            lines.append(f"    {diagnostic.render()}")
    clean = sum(1 for c in certificates if c.ok)
    lines.append(f"{clean}/{len(certificates)} workload(s) interference-clean")
    return "\n".join(lines)
