"""Reference conflict replay: per-set miss decomposition for certificates.

:func:`conflict_replay` re-runs a line-event trace against a minimal model
of the reference caches — per-set residency, a round-robin victim pointer
that advances only on non-explicit fills, and WPA fills pinned to their
mandated way.  Misses in both reference schemes are independent of the
way-hint predictor (a wrong hint costs probes, never a fill), so the
replay's per-set miss counts reproduce the kernel's total misses exactly
for the baseline (``wpa_size == 0``) and way-placement schemes.  The S009
sanitizer invariant leans on that equality, then checks the statement the
interference certificates make: a set certified conflict-free must show
zero *conflict* misses, where

    ``conflict_misses(set) = misses(set) - distinct_lines_touched(set)``

(the caches start empty and are never flushed, so every non-cold miss is
a conflict eviction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.context import GeometrySpec
from repro.analysis.interference.graph import certify_conflict_free
from repro.trace.events import LineEventTrace

__all__ = [
    "ConflictReplay",
    "SetConflict",
    "conflict_free_violations",
    "conflict_replay",
    "trace_certified_sets",
]


@dataclass(frozen=True)
class SetConflict:
    """Replay outcome for one cache set."""

    set_index: int
    misses: int
    distinct_lines: int

    @property
    def conflict_misses(self) -> int:
        return self.misses - self.distinct_lines


@dataclass(frozen=True)
class ConflictReplay:
    """Whole-trace replay summary, per set and aggregated."""

    sets: Tuple[SetConflict, ...]
    total_misses: int
    total_conflict_misses: int

    def conflict_misses_of(self, set_index: int) -> int:
        for entry in self.sets:
            if entry.set_index == set_index:
                return entry.conflict_misses
        return 0


def conflict_replay(
    events: LineEventTrace, geometry: GeometrySpec, wpa_size: int = 0
) -> ConflictReplay:
    """Replay residency per set and decompose misses into cold + conflict.

    Mirrors :class:`repro.cache.cam_cache.CamCache` under round-robin
    replacement: the per-set victim pointer advances only when the policy
    chooses the way; explicit (WPA) fills land on the line's mandated way
    and leave the pointer untouched.
    """
    offset_bits = geometry.offset_bits
    set_mask = (1 << geometry.set_bits) - 1
    way_mask = (1 << geometry.way_bits) - 1
    tag_shift = offset_bits + geometry.set_bits
    ways = geometry.ways

    resident: Dict[int, Dict[int, int]] = {}
    way_line: Dict[int, List[Optional[int]]] = {}
    pointer: Dict[int, int] = {}
    misses: Dict[int, int] = {}
    seen: Dict[int, Set[int]] = {}

    for address in events.line_addrs.tolist():
        set_index = (address >> offset_bits) & set_mask
        lines = resident.get(set_index)
        if lines is None:
            lines = {}
            resident[set_index] = lines
            way_line[set_index] = [None] * ways
            pointer[set_index] = 0
            misses[set_index] = 0
            seen[set_index] = set()
        if address in lines:
            continue
        misses[set_index] += 1
        seen[set_index].add(address)
        if address < wpa_size:
            way = (address >> tag_shift) & way_mask
        else:
            way = pointer[set_index]
            pointer[set_index] = (way + 1) % ways
        evicted = way_line[set_index][way]
        if evicted is not None:
            del lines[evicted]
        way_line[set_index][way] = address
        lines[address] = way

    sets = tuple(
        SetConflict(
            set_index=set_index,
            misses=misses[set_index],
            distinct_lines=len(seen[set_index]),
        )
        for set_index in sorted(misses)
    )
    return ConflictReplay(
        sets=sets,
        total_misses=sum(entry.misses for entry in sets),
        total_conflict_misses=sum(entry.conflict_misses for entry in sets),
    )


def trace_certified_sets(
    events: LineEventTrace, geometry: GeometrySpec, wpa_size: int = 0
) -> Tuple[int, ...]:
    """Sets certified conflict-free from the trace's own line footprint.

    Uses the lines the trace actually touches (a subset of the layout's),
    so it certifies at least as many sets as the layout-level pass —
    :func:`certify_conflict_free` is monotone under taking subsets.
    """
    touched: Dict[int, Set[int]] = {}
    offset_bits = geometry.offset_bits
    set_mask = (1 << geometry.set_bits) - 1
    for address in events.touched_lines().tolist():
        touched.setdefault((address >> offset_bits) & set_mask, set()).add(address)
    return tuple(
        set_index
        for set_index, lines in sorted(touched.items())
        if certify_conflict_free(sorted(lines), geometry, wpa_size)
    )


def conflict_free_violations(
    replay: ConflictReplay, certified_sets: Sequence[int]
) -> Mapping[int, int]:
    """Certified sets that nevertheless replayed conflict misses."""
    certified = set(certified_sets)
    return {
        entry.set_index: entry.conflict_misses
        for entry in replay.sets
        if entry.set_index in certified and entry.conflict_misses > 0
    }
