"""repro.analysis — rule-based static diagnostics (``repro lint``).

The paper's DIABLO pass rewrites binaries under a stack of invariants
(chain ordering by execution weight, page-multiple WPA sizes, one
(set, way) home per WPA line, conservation-respecting energy constants).
This package checks those invariants *statically*, before a single cycle
is simulated:

* :mod:`~repro.analysis.diagnostics` — the :class:`Diagnostic` value type
  (rule id, severity, location, message, suggested fix);
* :mod:`~repro.analysis.registry` — rule registration with
  ``--select``/``--ignore`` resolution and severity overrides;
* :mod:`~repro.analysis.rules` — the concrete rule catalog: ``P``
  (program structure), ``L`` (layout/WPA), ``C`` (config), ``A``
  (abstract-interpretation cache behaviour, backed by
  :mod:`repro.analysis.absint`);
* :mod:`~repro.analysis.engine` — the :class:`Analyzer` driver;
* :mod:`~repro.analysis.reporters` — deterministic text and JSON output.

Entry points: the ``repro lint`` CLI subcommand,
``ExperimentRunner(strict=True)`` pre-flights, and
:func:`repro.program.validate.validate_program` (now a wrapper over the
``P`` rules).  See ``docs/analysis.md`` for the rule catalog.
"""

from repro.analysis.context import (
    AnalysisContext,
    GeometrySpec,
    LayoutView,
    ProgramView,
)
from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.engine import Analyzer, analyze_program, max_severity
from repro.analysis.registry import DEFAULT_REGISTRY, Finding, Rule, RuleRegistry
from repro.analysis.reporters import render_json, render_text, summarize

__all__ = [
    "AnalysisContext",
    "Analyzer",
    "DEFAULT_REGISTRY",
    "Diagnostic",
    "Finding",
    "GeometrySpec",
    "LayoutView",
    "Location",
    "ProgramView",
    "Rule",
    "RuleRegistry",
    "Severity",
    "analyze_program",
    "max_severity",
    "render_json",
    "render_text",
    "summarize",
]
