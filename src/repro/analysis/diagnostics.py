"""The diagnostic data model shared by every analysis rule and reporter.

A :class:`Diagnostic` is one concrete problem found by one rule at one
location.  Diagnostics are plain immutable values with a total ordering
(rule id, then location, then message) so reporter output — and therefore
CI diffs over ``repro lint --format json`` — is deterministic regardless
of rule execution order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = ["Severity", "Location", "Diagnostic"]


class Severity(enum.IntEnum):
    """How bad a diagnostic is; comparable (``ERROR > WARNING > INFO``)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        try:
            return cls[name.strip().upper()]
        except KeyError:
            valid = ", ".join(level.name.lower() for level in cls)
            raise ValueError(
                f"unknown severity {name!r} (expected one of: {valid})"
            ) from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Location:
    """Where a diagnostic points.

    ``kind`` names the analysed artifact class (``program``, ``layout``,
    ``config``), ``name`` the artifact instance (a program name, a config
    file), and ``detail`` the position inside it (a block label, a
    parameter name).  All three are plain strings so locations survive
    JSON round-trips and sort stably.
    """

    kind: str
    name: str
    detail: str = ""

    def sort_key(self) -> Tuple[str, str, str]:
        return (self.kind, self.name, self.detail)

    def to_dict(self) -> Dict[str, str]:
        return {"kind": self.kind, "name": self.name, "detail": self.detail}

    def __str__(self) -> str:
        base = f"{self.kind}:{self.name}"
        return f"{base}:{self.detail}" if self.detail else base


@dataclass(frozen=True)
class Diagnostic:
    """One problem found by one rule, ready for rendering or JSON export."""

    rule_id: str
    rule_name: str
    severity: Severity
    location: Location
    message: str
    suggestion: Optional[str] = None

    def sort_key(self) -> Tuple[str, Tuple[str, str, str], str]:
        """Stable output order: rule id, then location, then message."""
        return (self.rule_id, self.location.sort_key(), self.message)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "name": self.rule_name,
            "severity": str(self.severity),
            "location": self.location.to_dict(),
            "message": self.message,
            "suggestion": self.suggestion,
        }

    def render(self) -> str:
        """One human-readable line (plus an indented hint when present)."""
        line = f"{self.location}: {self.rule_id} {self.severity}: {self.message}"
        if self.suggestion:
            line += f"\n    hint: {self.suggestion}"
        return line
