"""Program-layer rules (``P``): structural soundness of the linked program.

These absorb (and extend) the checks historically hard-coded in
:func:`repro.program.validate.validate_program`, which is now a thin
wrapper raising :class:`~repro.errors.ProgramError` when any of them
fires at error severity.  Message wording is kept compatible with the
old validator where tests match on substrings.
"""

from __future__ import annotations

from typing import Dict, Iterator

from repro.analysis.context import AnalysisContext, ProgramView
from repro.analysis.diagnostics import Location, Severity
from repro.analysis.registry import Finding, rule
from repro.program.basic_block import BasicBlock, BlockKind

_TERMINATED = (BlockKind.JUMP, BlockKind.CONDJUMP, BlockKind.CALL, BlockKind.RETURN)
_FALLS = (BlockKind.FALLTHROUGH, BlockKind.CONDJUMP, BlockKind.CALL)


def _block_location(view: ProgramView, block: BasicBlock) -> Location:
    return Location("program", view.name, f"{block.function}:{block.label}")


def _function_location(view: ProgramView, name: str) -> Location:
    return Location("program", view.name, name)


@rule(
    "P001",
    "empty-block",
    "program",
    Severity.ERROR,
    "A basic block contains no instructions.",
)
def check_empty_block(context: AnalysisContext) -> Iterator[Finding]:
    view = context.program
    if view is None:
        return
    for block in view.blocks():
        if block.num_instructions == 0:
            yield Finding(
                _block_location(view, block),
                f"block {block.function}:{block.label} is empty",
                "give the block a body or merge it into a neighbour",
            )


@rule(
    "P002",
    "missing-terminator",
    "program",
    Severity.ERROR,
    "A block's kind promises a control-flow terminator it does not have.",
)
def check_missing_terminator(context: AnalysisContext) -> Iterator[Finding]:
    view = context.program
    if view is None:
        return
    for block in view.blocks():
        if block.kind in _TERMINATED and block.terminator is None:
            yield Finding(
                _block_location(view, block),
                f"block {block.function}:{block.label} claims kind "
                f"{block.kind.value} but has no terminator",
                "end the block with the branch/call/return it declares",
            )


@rule(
    "P003",
    "interior-branch",
    "program",
    Severity.ERROR,
    "A control-flow instruction appears before the end of a block.",
)
def check_interior_branch(context: AnalysisContext) -> Iterator[Finding]:
    view = context.program
    if view is None:
        return
    for block in view.blocks():
        if any(instr.is_branch for instr in block.instructions[:-1]):
            yield Finding(
                _block_location(view, block),
                f"block {block.function}:{block.label} has an interior branch",
                "split the block at the branch: blocks are single-exit",
            )


@rule(
    "P004",
    "dangling-successor",
    "program",
    Severity.ERROR,
    "A successor label (fall-through or branch target) resolves to no block.",
)
def check_dangling_successor(context: AnalysisContext) -> Iterator[Finding]:
    view = context.program
    if view is None:
        return
    for block in view.blocks():
        if block.kind in _FALLS:
            if block.fall_label is None:
                yield Finding(
                    _block_location(view, block),
                    f"block {block.function}:{block.label} ({block.kind.value}) "
                    f"lacks a fall-through successor",
                    "declare the block that physically follows it",
                )
            elif view.resolve_label(block, block.fall_label) is None:
                yield Finding(
                    _block_location(view, block),
                    f"block {block.function}:{block.label} falls through to "
                    f"unknown label {block.fall_label!r}",
                    "fix the label or declare the missing block",
                )
        if block.kind in (BlockKind.JUMP, BlockKind.CONDJUMP):
            if (
                block.taken_label is None
                or view.resolve_label(block, block.taken_label) is None
            ):
                yield Finding(
                    _block_location(view, block),
                    f"block {block.function}:{block.label} branches to "
                    f"unknown label {block.taken_label!r}",
                    "fix the branch target or declare the missing block",
                )


@rule(
    "P005",
    "duplicate-fallthrough",
    "program",
    Severity.ERROR,
    "Two blocks claim the same block as their fall-through successor.",
)
def check_duplicate_fallthrough(context: AnalysisContext) -> Iterator[Finding]:
    view = context.program
    if view is None:
        return
    fall_in: Dict[int, BasicBlock] = {}
    for block in view.blocks():
        if block.fall_label is None:
            continue
        fall_uid = view.resolve_label(block, block.fall_label)
        if fall_uid is None:
            continue  # P004's problem
        if fall_uid in fall_in:
            yield Finding(
                _block_location(view, block),
                f"block uid {fall_uid} is the fall-through target of both uid "
                f"{fall_in[fall_uid].uid} and uid {block.uid}",
                "a block can physically follow only one predecessor; "
                "insert an explicit jump",
            )
        else:
            fall_in[fall_uid] = block


@rule(
    "P006",
    "undefined-callee",
    "program",
    Severity.ERROR,
    "A call block names a function the program does not define.",
)
def check_undefined_callee(context: AnalysisContext) -> Iterator[Finding]:
    view = context.program
    if view is None:
        return
    for block in view.blocks():
        if block.kind is BlockKind.CALL and block.callee not in view.functions:
            yield Finding(
                _block_location(view, block),
                f"block {block.function}:{block.label} calls undefined "
                f"function {block.callee!r}",
                "define the callee or retarget the call",
            )


@rule(
    "P007",
    "function-no-exit",
    "program",
    Severity.ERROR,
    "A function has neither a return nor an unconditional jump out.",
)
def check_function_no_exit(context: AnalysisContext) -> Iterator[Finding]:
    view = context.program
    if view is None:
        return
    for function in view.functions.values():
        kinds = {block.kind for block in function.blocks}
        if BlockKind.RETURN not in kinds and BlockKind.JUMP not in kinds:
            yield Finding(
                _function_location(view, function.name),
                f"function {function.name!r} has no return and no jump; "
                f"execution would run off its end",
                "terminate the function with ret or an unconditional jump",
            )


@rule(
    "P008",
    "unreachable-function",
    "program",
    Severity.ERROR,
    "A function's entry block cannot be reached from the program entry point.",
)
def check_unreachable_function(context: AnalysisContext) -> Iterator[Finding]:
    view = context.program
    if view is None or view.entry not in view.functions:
        return
    reachable = view.reachable_from_entry()
    for function in view.functions.values():
        if not function.blocks:
            continue
        if function.entry.uid not in reachable:
            yield Finding(
                _function_location(view, function.name),
                f"function {function.name!r} is unreachable from the entry point",
                "add a call site or drop the dead function",
            )
