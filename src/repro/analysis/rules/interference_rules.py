"""Interference rules (``I``): findings from the static conflict graph.

These rules consume the trace-free temporal interference analysis of
:mod:`repro.analysis.interference` — the loop-nesting forest of the
call-threading ICFG plus the line placement of a concrete layout.  Every
finding points at *avoidable* conflict structure: pathologies a different
placement (or WPA threshold) could have removed, never conditions forced
by the program being larger than the cache.  That distinction is what
keeps the layer quiet on healthy layouts: a 160KB binary necessarily
overflows every set of a 32KB cache and necessarily crosses the WPA
boundary somewhere, and neither deserves a diagnostic.

They self-gate on the inputs the analysis needs (program + layout +
geometry), so program-only lints skip them silently.  The interference
machinery is imported lazily inside the helpers, mirroring
:mod:`repro.analysis.rules.absint_rules` (the analysis pulls in the
verifier's dataflow module, which may not be importable yet when
``repro.analysis.engine`` first loads this package).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Location, Severity
from repro.analysis.registry import Finding, rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.interference.graph import InterferenceGraph, LoopNest

__all__ = []  # rules register themselves; nothing to import by name

#: A set must carry more than this fraction of the whole program's
#: predicted conflict weight to count as a hotspot (I004).
_HOTSPOT_FRACTION = 0.5

#: A loop's same-set line count must exceed both the associativity and
#: this multiple of its even-spread density to count as clustered (I001):
#: overflow explained by sheer footprint is not a layout defect.
_CLUSTER_SLACK = 2


def _interference_location(context: AnalysisContext, detail: str = "") -> Location:
    name = context.layout.program_name if context.layout else context.subject
    return Location("interference", name, detail)


def _graph(context: AnalysisContext) -> Optional["InterferenceGraph"]:
    """The layout's interference graph for this context's WPA, cached."""
    if "interference_graph" in context._cache:
        cached: Optional["InterferenceGraph"] = context._cache["interference_graph"]
        return cached
    result: Optional["InterferenceGraph"] = None
    if (
        context.program is not None
        and context.layout is not None
        and context.geometry is not None
        and context.geometry.is_sound()
    ):
        from repro.analysis.interference.graph import build_interference_graph

        result = build_interference_graph(
            context.program,
            context.layout,
            context.geometry,
            context.wpa_size or 0,
        )
    context._cache["interference_graph"] = result
    return result


def _loop_lines(
    context: AnalysisContext,
) -> Optional[List[Tuple[int, Set[int], Dict[int, Set[int]]]]]:
    """Per loop component: (level, distinct lines, set -> lines), cached."""
    if "interference_loop_lines" in context._cache:
        cached: Optional[List[Tuple[int, Set[int], Dict[int, Set[int]]]]] = (
            context._cache["interference_loop_lines"]
        )
        return cached
    result: Optional[List[Tuple[int, Set[int], Dict[int, Set[int]]]]] = None
    nest = _nest(context)
    if nest is not None and context.layout is not None:
        from repro.analysis.absint.analysis import block_lines

        assert context.geometry is not None
        geometry = context.geometry
        result = []
        for component in nest.components:
            lines: Set[int] = set()
            by_set: Dict[int, Set[int]] = {}
            for uid in component.members:
                for line in block_lines(uid, context.layout, geometry):
                    lines.add(line)
                    by_set.setdefault(geometry.set_index(line), set()).add(line)
            result.append((component.level, lines, by_set))
    context._cache["interference_loop_lines"] = result
    return result


def _nest(context: AnalysisContext) -> Optional["LoopNest"]:
    if "interference_nest" in context._cache:
        cached: Optional["LoopNest"] = context._cache["interference_nest"]
        return cached
    result: Optional["LoopNest"] = None
    if (
        context.program is not None
        and context.layout is not None
        and context.geometry is not None
        and context.geometry.is_sound()
    ):
        from repro.analysis.interference.graph import loop_nest_for

        result = loop_nest_for(context.program)
    context._cache["interference_nest"] = result
    return result


@rule(
    "I001",
    "clustered-loop-set-overflow",
    "interference",
    Severity.WARNING,
    "A loop whose whole footprint fits in the cache still maps more lines "
    "to one set than the associativity — and at least twice as many as an "
    "even spread of that footprint would: the placement clusters the loop "
    "at a set-aligned stride, guaranteeing self-conflict.",
)
def check_clustered_loop_set_overflow(
    context: AnalysisContext,
) -> Iterator[Finding]:
    loops = _loop_lines(context)
    if loops is None:
        return
    assert context.geometry is not None
    geometry = context.geometry
    cache_lines = geometry.size_bytes // geometry.line_size
    num_sets = max(1, cache_lines // geometry.ways)
    for level, lines, by_set in loops:
        if not lines or len(lines) > cache_lines:
            continue
        spread = -(-len(lines) // num_sets)  # ceil division
        threshold = max(geometry.ways, _CLUSTER_SLACK * spread)
        worst = max(by_set.items(), key=lambda item: (len(item[1]), -item[0]))
        if len(worst[1]) > threshold:
            yield Finding(
                _interference_location(context, f"set {worst[0]}"),
                f"a depth-{level} loop of {len(lines)} line(s) (fits the "
                f"{cache_lines}-line cache) puts {len(worst[1])} lines into "
                f"set {worst[0]} ({geometry.ways} ways); an even spread "
                f"would need only {spread}",
                "the loop's blocks are placed at a set-aligned stride; "
                "re-chain the layout to spread the loop across sets",
            )


@rule(
    "I002",
    "wpa-split-loop",
    "interference",
    Severity.WARNING,
    "The program fits in the cache, yet a loop straddles the WPA boundary "
    "with same-set lines on both sides: the unpinned half's round-robin "
    "fills contend with the pinned half every iteration, and a larger WPA "
    "would have covered the whole loop.",
)
def check_wpa_split_loop(context: AnalysisContext) -> Iterator[Finding]:
    loops = _loop_lines(context)
    wpa_size = context.wpa_size or 0
    if loops is None or wpa_size <= 0 or context.layout is None:
        return
    assert context.geometry is not None
    geometry = context.geometry
    if context.layout.end_address > geometry.size_bytes:
        return  # splitting is unavoidable for cache-exceeding binaries
    for level, lines, by_set in loops:
        for set_index in sorted(by_set):
            set_lines = by_set[set_index]
            pinned = sorted(line for line in set_lines if line < wpa_size)
            free = sorted(line for line in set_lines if line >= wpa_size)
            if pinned and free:
                yield Finding(
                    _interference_location(context, f"set {set_index}"),
                    f"a depth-{level} loop splits across the WPA boundary "
                    f"{wpa_size:#x} in set {set_index}: line(s) "
                    f"{', '.join(f'{a:#x}' for a in pinned)} are pinned, "
                    f"{', '.join(f'{a:#x}' for a in free)} are not",
                    "the whole binary fits in the cache; extend the WPA over "
                    "the loop (or move the loop below the boundary)",
                )
                break


@rule(
    "I003",
    "wpa-mandated-collision",
    "interference",
    Severity.ERROR,
    "Two placed WPA lines share both a cache set and a mandated way, so "
    "every fill of one silently evicts the other — the one-home-per-line "
    "contract of way-placement is broken before a single cycle runs.",
)
def check_wpa_mandated_collision(context: AnalysisContext) -> Iterator[Finding]:
    graph = _graph(context)
    wpa_size = context.wpa_size or 0
    if graph is None or wpa_size <= 0:
        return
    geometry = graph.geometry
    for entry in graph.sets:
        homes: Dict[int, List[int]] = {}
        for line in entry.wpa_lines:
            homes.setdefault(geometry.mandated_way(line), []).append(line)
        for way, lines in sorted(homes.items()):
            if len(lines) > 1:
                rendered = ", ".join(f"{a:#x}" for a in sorted(lines))
                yield Finding(
                    _interference_location(
                        context, f"set {entry.set_index} way {way}"
                    ),
                    f"WPA lines {rendered} all pin set {entry.set_index}, "
                    f"mandated way {way}",
                    "a WPA larger than the cache (or a non-contiguous one) "
                    "cannot give every line its own home; shrink it to at "
                    "most one cache-size of bytes",
                )


@rule(
    "I004",
    "conflict-pressure-hotspot",
    "interference",
    Severity.WARNING,
    "One cache set concentrates the majority of the whole program's "
    "predicted conflict weight: the hot loops collide in a single set "
    "while the rest of the cache idles.",
)
def check_conflict_pressure_hotspot(context: AnalysisContext) -> Iterator[Finding]:
    graph = _graph(context)
    if graph is None or graph.total_weight <= 0:
        return
    worst = max(graph.sets, key=lambda entry: (entry.pressure, -entry.set_index))
    if worst.pressure > _HOTSPOT_FRACTION * graph.total_weight:
        yield Finding(
            _interference_location(context, f"set {worst.set_index}"),
            f"set {worst.set_index} carries {worst.pressure} of the "
            f"program's {graph.total_weight} predicted conflict weight "
            f"({len(worst.lines)} resident line(s))",
            "the interference is concentrated, not diffuse — re-placing a "
            "handful of lines removes most of the predicted conflicts "
            "(see the certificate's top pairs)",
        )


@rule(
    "I005",
    "unplaced-loop-block",
    "interference",
    Severity.WARNING,
    "A basic block inside a loop has no placement in the layout, so the "
    "interference graph (and every certificate derived from it) is blind "
    "to the lines that block will actually occupy.",
)
def check_unplaced_loop_block(context: AnalysisContext) -> Iterator[Finding]:
    nest = _nest(context)
    if nest is None or context.layout is None:
        return
    layout = context.layout
    for uid in sorted(nest.paths):
        if layout.addresses.get(uid) is None or layout.sizes.get(uid, 0) <= 0:
            depth = len(nest.paths[uid])
            yield Finding(
                _interference_location(context, f"uid {uid}"),
                f"block uid {uid} sits at loop depth {depth} but has no "
                f"placed address/size in the layout",
                "certificates for this layout undercount interference; "
                "place the block or drop it from the program view",
            )


@rule(
    "I006",
    "hot-line-outside-wpa",
    "interference",
    Severity.WARNING,
    "The whole binary fits in the cache, yet a line executed inside a "
    "loop lies above the WPA threshold: it pays full CAM searches every "
    "iteration when a slightly larger WPA would pin it for free.",
)
def check_hot_line_outside_wpa(context: AnalysisContext) -> Iterator[Finding]:
    graph = _graph(context)
    wpa_size = context.wpa_size or 0
    if graph is None or wpa_size <= 0 or context.layout is None:
        return
    geometry = graph.geometry
    if context.layout.end_address > geometry.size_bytes:
        return  # some code must live outside the WPA; nothing avoidable
    from repro.analysis.interference.graph import BASE

    hot = [
        (weight, line)
        for line, weight in graph.line_weight.items()
        if line >= wpa_size and weight >= BASE
    ]
    if hot:
        weight, line = max(hot)
        yield Finding(
            _interference_location(context, f"line {line:#x}"),
            f"{len(hot)} looped line(s) lie above the WPA threshold "
            f"{wpa_size:#x} although the binary fits the cache; hottest is "
            f"{line:#x} (static weight {weight})",
            "raise the WPA to the binary's aligned end so every looped "
            "line gets a pinned way and single-way probes",
        )
