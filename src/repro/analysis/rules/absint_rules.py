"""Abstract-interpretation rules (``A``): findings the fixpoint proves.

Unlike the structural ``P``/``L``/``C`` layers, these rules consume the
must/may cache analysis of :mod:`repro.analysis.absint` — every finding
is backed by a static proof over the interprocedural CFG (a line the
analysis shows can *never* hit, a WPA page that buys a way without one
guaranteed hit, two WPA lines structurally forced to thrash).  They
self-gate on the same inputs the analysis needs (program + layout +
geometry + a positive WPA), so program-only lints skip them silently.

The absint machinery is imported lazily inside the checks:
``repro.analysis.engine`` imports this package before ``repro.verify``
exists on some import paths, and the analysis pulls in the verifier's
dataflow module.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Location, Severity
from repro.analysis.registry import Finding, rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.absint.analysis import CacheBehavior

__all__ = []  # rules register themselves; nothing to import by name

#: Below this many reachable fetch sites the unknown fraction is noise,
#: not a degeneracy verdict (A003).
_MIN_SITES_FOR_DEGENERACY = 8
#: Unknown fraction beyond which the analysis result carries no
#: information worth certifying (A003).
_DEGENERATE_UNKNOWN_FRACTION = 0.5


def _absint_location(context: AnalysisContext, detail: str = "") -> Location:
    name = context.layout.program_name if context.layout else context.subject
    return Location("absint", name, detail)


def _behavior(context: AnalysisContext) -> Optional["CacheBehavior"]:
    """The way-placement fixpoint for this context's WPA, cached."""
    if "absint_behavior" in context._cache:
        cached: Optional["CacheBehavior"] = context._cache["absint_behavior"]
        return cached
    result: Optional["CacheBehavior"] = None
    wpa_size = context.wpa_size or 0
    if wpa_size > 0:
        from repro.analysis.absint.analysis import analyze_cache

        result = analyze_cache(
            context.program, context.layout, context.geometry,
            "way-placement", wpa_size,
        )
    context._cache["absint_behavior"] = result
    return result


@rule(
    "A001",
    "wpa-line-never-hits",
    "absint",
    Severity.WARNING,
    "A WPA line on an ICFG cycle is statically proven to miss on every "
    "fetch: its mandated way is always re-filled by a conflicting line "
    "before control returns.",
)
def check_wpa_line_never_hits(context: AnalysisContext) -> Iterator[Finding]:
    behavior = _behavior(context)
    if behavior is None or not behavior.converged:
        return
    for addr in sorted(behavior.never_hit):
        index = behavior.universe.index[addr]
        summary = behavior.line_summaries[addr]
        if behavior.universe.is_wpa[index] and summary.in_cycle:
            yield Finding(
                _absint_location(context, f"line {addr:#x}"),
                f"WPA line {addr:#x} executes on a cycle but can never hit "
                f"({summary.sites} fetch site(s), all guaranteed misses)",
                "another line with the same set and mandated way evicts it "
                "every iteration; revisit the placement or shrink the WPA",
            )


@rule(
    "A002",
    "wpa-page-no-guaranteed-hits",
    "absint",
    Severity.WARNING,
    "Every fetch site of a WPA page is conclusively classified, the page "
    "is executed on a cycle, yet not one site is a guaranteed hit — the "
    "page pays WPA bookkeeping for nothing.",
)
def check_wpa_page_no_guaranteed_hits(context: AnalysisContext) -> Iterator[Finding]:
    behavior = _behavior(context)
    page_size = context.page_size
    if behavior is None or not behavior.converged or not page_size:
        return
    pages: Dict[int, List[int]] = {}
    for addr, summary in behavior.line_summaries.items():
        index = behavior.universe.index[addr]
        if behavior.universe.is_wpa[index] and summary.sites > 0:
            pages.setdefault(addr // page_size, []).append(addr)
    for page in sorted(pages):
        summaries = [behavior.line_summaries[addr] for addr in pages[page]]
        if (
            all(s.conclusive for s in summaries)
            and not any(s.guaranteed_hits for s in summaries)
            and any(s.in_cycle for s in summaries)
        ):
            start = page * page_size
            yield Finding(
                _absint_location(context, f"page {start:#x}"),
                f"WPA page [{start:#x}, {start + page_size:#x}) has "
                f"{sum(s.sites for s in summaries)} conclusively classified "
                f"fetch site(s) and zero guaranteed hits",
                "the page reserves mandated ways without ever provably "
                "using them; consider excluding it from the WPA",
            )


@rule(
    "A003",
    "bounds-degenerate",
    "absint",
    Severity.WARNING,
    "The fixpoint classified more than half of all reachable fetch sites "
    "as unknown and guaranteed no hit anywhere: the static bounds carry "
    "no more information than the trace footprint alone.",
)
def check_bounds_degenerate(context: AnalysisContext) -> Iterator[Finding]:
    behavior = _behavior(context)
    if behavior is None:
        return
    if behavior.reachable_sites < _MIN_SITES_FOR_DEGENERACY:
        return
    if (
        behavior.unknown_fraction > _DEGENERATE_UNKNOWN_FRACTION
        and behavior.guaranteed_hit_sites == 0
    ):
        yield Finding(
            _absint_location(context, "fixpoint"),
            f"{behavior.unknown_sites} of {behavior.reachable_sites} "
            f"reachable fetch sites are unknown and none is a guaranteed "
            f"hit (converged={behavior.converged}, rounds={behavior.rounds})",
            "the classification adds nothing over the footprint bounds; "
            "check the layout for pathological conflict structure",
        )


@rule(
    "A004",
    "unreachable-wpa-line",
    "absint",
    Severity.INFO,
    "A line inside the WPA is only ever occupied by blocks the ICFG "
    "cannot reach from the entry.",
)
def check_unreachable_wpa_line(context: AnalysisContext) -> Iterator[Finding]:
    behavior = _behavior(context)
    if behavior is None:
        return
    for addr in sorted(behavior.unreachable_lines):
        index = behavior.universe.index[addr]
        if behavior.universe.is_wpa[index]:
            yield Finding(
                _absint_location(context, f"line {addr:#x}"),
                f"WPA line {addr:#x} is placed but only inside blocks "
                f"unreachable from the program entry",
                "dead code inside the WPA inflates the threshold; place "
                "unreachable blocks after the WPA boundary",
            )


@rule(
    "A005",
    "wpa-page-unused",
    "absint",
    Severity.INFO,
    "A full page below the WPA threshold contains no placed code at all.",
)
def check_wpa_page_unused(context: AnalysisContext) -> Iterator[Finding]:
    behavior = _behavior(context)
    page_size = context.page_size
    wpa_size = context.wpa_size or 0
    if behavior is None or not page_size or wpa_size <= 0:
        return
    used = {
        addr // page_size
        for index, addr in enumerate(behavior.universe.lines)
        if behavior.universe.is_wpa[index]
    }
    for page in range(wpa_size // page_size):
        if page not in used:
            start = page * page_size
            yield Finding(
                _absint_location(context, f"page {start:#x}"),
                f"page [{start:#x}, {start + page_size:#x}) lies below the "
                f"WPA threshold but holds no placed code",
                "an empty WPA page wastes I-TLB protection bits; tighten "
                "the threshold to the placed footprint",
            )


@rule(
    "A006",
    "wpa-proven-thrash",
    "absint",
    Severity.WARNING,
    "Two executed WPA lines share a cache set and a mandated way, and the "
    "fixpoint proves at least one of them never hits: they structurally "
    "thrash the single way both are pinned to.",
)
def check_wpa_proven_thrash(context: AnalysisContext) -> Iterator[Finding]:
    behavior = _behavior(context)
    if behavior is None or not behavior.converged:
        return
    universe = behavior.universe
    slots: Dict[Tuple[int, int], List[int]] = {}
    for addr, summary in behavior.line_summaries.items():
        index = universe.index[addr]
        if universe.is_wpa[index] and summary.sites > 0:
            slots.setdefault(
                (universe.set_of[index], universe.home[index]), []
            ).append(addr)
    for (set_index, home), addrs in sorted(slots.items()):
        if len(addrs) < 2 or not any(a in behavior.never_hit for a in addrs):
            continue
        rendered = ", ".join(f"{a:#x}" for a in sorted(addrs))
        yield Finding(
            _absint_location(context, f"set {set_index} way {home}"),
            f"WPA lines {rendered} all map to set {set_index}, mandated "
            f"way {home}; the analysis proves the contention is lossy",
            "mandated-way collisions inside the WPA defeat the placement; "
            "re-chain the layout so hot lines get distinct ways",
        )
