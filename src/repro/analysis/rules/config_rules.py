"""Config-layer rules (``C``): energy parameters, cache geometry, grids.

These catch configurations the strict constructors accept (or that reach
the simulator as plain numbers) but that violate physical conservation or
silently waste work — the kind of mistake that otherwise only shows up as
implausible results deep inside an experiment sweep.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Location, Severity
from repro.analysis.registry import Finding, rule

__all__ = []  # rules register themselves; nothing to import by name


def _config_location(context: AnalysisContext, detail: str) -> Location:
    return Location("config", context.subject, detail)


def _is_pow2(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


@rule(
    "C001",
    "energy-conservation",
    "config",
    Severity.ERROR,
    "A single-way access costs at least a full parallel search, so "
    "way-placement could never save energy.",
)
def check_energy_conservation(context: AnalysisContext) -> Iterator[Finding]:
    energy, geometry = context.energy, context.geometry
    if energy is None or geometry is None or not geometry.is_sound():
        return
    if geometry.ways <= 1:
        return
    per_way_bit = energy.get("cam_pj_per_way_bit", 0.0)
    single_way = energy.get("way_mux_pj", 0.0) + per_way_bit * geometry.tag_bits
    full_search = per_way_bit * geometry.tag_bits * geometry.ways
    if single_way >= full_search:
        yield Finding(
            _config_location(context, "way_mux_pj"),
            f"a single-way access ({single_way:.2f} pJ) costs at least a full "
            f"{geometry.ways}-way parallel search ({full_search:.2f} pJ); "
            f"per-way energy must stay below the full-parallel read",
            "lower way_mux_pj or raise cam_pj_per_way_bit so one way is "
            "cheaper than all ways",
        )


@rule(
    "C002",
    "filter-cache-inversion",
    "config",
    Severity.WARNING,
    "An L0 filter-cache hit costs at least a full L1 data read.",
)
def check_filter_cache_inversion(context: AnalysisContext) -> Iterator[Finding]:
    energy = context.energy
    if energy is None:
        return
    l0_read = energy.get("l0_read_pj", 0.0)
    data_read = energy.get("data_read_pj", 0.0)
    if data_read > 0 and l0_read >= data_read:
        yield Finding(
            _config_location(context, "l0_read_pj"),
            f"l0_read_pj ({l0_read:.2f}) is not below data_read_pj "
            f"({data_read:.2f}); the filter cache can never save energy",
            "an L0 hit must cost less than the L1 data read it avoids",
        )


@rule(
    "C003",
    "geometry-not-power-of-two",
    "config",
    Severity.ERROR,
    "Cache geometry fields are not powers of two, or the geometry cannot "
    "hold its own ways.",
)
def check_geometry(context: AnalysisContext) -> Iterator[Finding]:
    geometry = context.geometry
    if geometry is None:
        return
    for field_name, value in (
        ("size_bytes", geometry.size_bytes),
        ("ways", geometry.ways),
        ("line_size", geometry.line_size),
    ):
        if not _is_pow2(value):
            yield Finding(
                _config_location(context, field_name),
                f"cache {field_name} {value} is not a positive power of two",
                "CAM banks and address slicing need power-of-two geometry",
            )
    if _is_pow2(geometry.line_size) and geometry.line_size < 4:
        yield Finding(
            _config_location(context, "line_size"),
            f"line size {geometry.line_size} is below one 4-byte instruction",
            "use lines of at least one instruction",
        )
    if (
        _is_pow2(geometry.size_bytes)
        and _is_pow2(geometry.ways)
        and _is_pow2(geometry.line_size)
    ):
        if geometry.size_bytes < geometry.ways * geometry.line_size:
            yield Finding(
                _config_location(context, "size_bytes"),
                f"cache of {geometry.size_bytes} bytes cannot hold "
                f"{geometry.ways} ways of {geometry.line_size}-byte lines",
                "shrink the associativity or grow the cache",
            )
        elif geometry.tag_bits <= 0:
            yield Finding(
                _config_location(context, "address_bits"),
                f"{geometry.address_bits} address bits leave no tag bits for "
                f"this geometry",
                "grow address_bits or shrink the cache",
            )


@rule(
    "C004",
    "duplicate-grid-cells",
    "config",
    Severity.WARNING,
    "An experiment grid contains duplicate cells that silently re-simulate "
    "the same configuration.",
)
def check_duplicate_grid_cells(context: AnalysisContext) -> Iterator[Finding]:
    cells = context.grid_cells
    if not cells:
        return
    counts = Counter(repr(cell) for cell in cells)
    duplicated = {cell: count for cell, count in counts.items() if count > 1}
    if duplicated:
        example = sorted(duplicated)[0]
        extra = sum(count - 1 for count in duplicated.values())
        yield Finding(
            _config_location(context, "grid"),
            f"{extra} duplicate grid cell(s) across {len(duplicated)} "
            f"configuration(s); e.g. {example} appears "
            f"{duplicated[example]} times",
            "deduplicate the cell list before running the grid",
        )


@rule(
    "C005",
    "contradictory-resilience",
    "config",
    Severity.WARNING,
    "Supervised-execution settings contradict each other (e.g. retries "
    "that can never run because every attempt times out immediately).",
)
def check_resilience_config(context: AnalysisContext) -> Iterator[Finding]:
    settings = context.resilience
    if settings is None:
        return
    retries = settings.get("retries")
    timeout = settings.get("timeout_s")
    if retries is not None and timeout is not None and retries > 0 and timeout == 0:
        yield Finding(
            _config_location(context, "timeout_s"),
            f"retries={retries} with timeout_s=0 is contradictory: every "
            f"worker-chunk attempt is killed immediately, so no retry can "
            f"ever succeed",
            "raise timeout_s (or drop it) so retried attempts get to run",
        )
    for name in ("retries", "backoff_s", "timeout_s"):
        value = settings.get(name)
        if value is not None and value < 0:
            yield Finding(
                _config_location(context, name),
                f"resilience {name} is {value}; it must be >= 0 "
                f"(the runner rejects this config outright)",
                f"use a non-negative {name}",
            )
    fallback = settings.get("fallback")
    if fallback is not None and fallback not in ("none", "reference"):
        yield Finding(
            _config_location(context, "fallback"),
            f"unknown fallback policy {fallback!r}",
            "choose 'reference' (bit-identical engine degradation) or 'none'",
        )
