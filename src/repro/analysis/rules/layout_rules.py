"""Layout/WPA-layer rules (``L``): the invariants the paper's link-time
pass must preserve when it rewrites the binary.

Chain-granularity checks (L003, L006, L007) reason at the same level as
the placement pass itself — fall-through chains are its atomic reordering
unit — so a correct heaviest-chain-first layout is clean by construction,
while a layout that displaces hot chains with cold ones is flagged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Location, Severity
from repro.analysis.registry import Finding, rule
from repro.errors import LayoutError, ProgramError
from repro.isa.instructions import INSTRUCTION_SIZE
from repro.layout.chains import build_chains

__all__ = []  # rules register themselves; nothing to import by name


def _layout_location(context: AnalysisContext, detail: str = "") -> Location:
    name = context.layout.program_name if context.layout else context.subject
    return Location("layout", name, detail)


@dataclass(frozen=True)
class _PlacedChain:
    """One fall-through chain as placed by the layout under analysis."""

    head_uid: int
    address: int
    weight: int
    size_bytes: int


def _placed_chains(context: AnalysisContext) -> Optional[List[_PlacedChain]]:
    """Chains of ``context.program`` placed by ``context.layout``, in
    address order — or ``None`` when the context cannot support them
    (missing pieces, or structural errors other rules already report)."""
    if "placed_chains" in context._cache:
        cached: Optional[List[_PlacedChain]] = context._cache["placed_chains"]
        return cached
    result: Optional[List[_PlacedChain]] = None
    view, layout, counts = context.program, context.layout, context.block_counts
    if view is not None and layout is not None and counts is not None:
        try:
            chains = build_chains(view)
        except (LayoutError, ProgramError):
            chains = None
        if chains is not None:
            placed: List[_PlacedChain] = []
            complete = True
            for chain in chains:
                if any(uid not in layout.addresses for uid in chain.uids):
                    complete = False
                    break
                weight = sum(
                    counts.get(uid, 0) * view.block_by_uid(uid).num_instructions
                    for uid in chain.uids
                )
                placed.append(
                    _PlacedChain(
                        chain.head,
                        layout.addresses[chain.head],
                        weight,
                        sum(layout.sizes.get(uid, 0) for uid in chain.uids),
                    )
                )
            if complete:
                placed.sort(key=lambda item: item.address)
                result = placed
    context._cache["placed_chains"] = result
    return result


@rule(
    "L001",
    "overlapping-blocks",
    "layout",
    Severity.ERROR,
    "Two placed blocks occupy overlapping address ranges.",
)
def check_overlapping_blocks(context: AnalysisContext) -> Iterator[Finding]:
    layout = context.layout
    if layout is None:
        return
    spans = sorted(
        (layout.addresses[uid], layout.addresses[uid] + layout.sizes.get(uid, 0), uid)
        for uid in layout.addresses
    )
    for (s0, e0, u0), (s1, _e1, u1) in zip(spans, spans[1:]):
        if s1 < e0:
            yield Finding(
                _layout_location(context, f"uid {u1}"),
                f"blocks uid {u0} [{s0:#x},{e0:#x}) and uid {u1} overlap "
                f"(uid {u1} starts at {s1:#x})",
                "re-link the layout; block spans must be disjoint",
            )


@rule(
    "L002",
    "misaligned-block",
    "layout",
    Severity.ERROR,
    "A block is placed at a negative or instruction-misaligned address, "
    "or has a non-positive size.",
)
def check_misaligned_block(context: AnalysisContext) -> Iterator[Finding]:
    layout = context.layout
    if layout is None:
        return
    for uid in sorted(layout.addresses):
        address = layout.addresses[uid]
        if address < 0 or address % INSTRUCTION_SIZE:
            yield Finding(
                _layout_location(context, f"uid {uid}"),
                f"block uid {uid} at unaligned or negative address {address:#x}",
                f"addresses must be non-negative multiples of {INSTRUCTION_SIZE}",
            )
        size = layout.sizes.get(uid, 0)
        if size <= 0:
            yield Finding(
                _layout_location(context, f"uid {uid}"),
                f"block uid {uid} has non-positive size {size}",
                "every placed block must cover at least one instruction",
            )


@rule(
    "L003",
    "chain-order-violation",
    "layout",
    Severity.WARNING,
    "Chains are not ordered heaviest-first: a lighter chain precedes a "
    "strictly heavier one.",
)
def check_chain_order(context: AnalysisContext) -> Iterator[Finding]:
    placed = _placed_chains(context)
    if not placed:
        return
    inversions = [
        (earlier, later)
        for earlier, later in zip(placed, placed[1:])
        if earlier.weight < later.weight
    ]
    if inversions:
        earlier, later = inversions[0]
        yield Finding(
            _layout_location(context, f"chain at {earlier.address:#x}"),
            f"chain weight ordering violated at {len(inversions)} adjacent "
            f"position(s); e.g. chain at {earlier.address:#x} (weight "
            f"{earlier.weight}) precedes chain at {later.address:#x} "
            f"(weight {later.weight})",
            "re-run the way-placement pass (heaviest chain first)",
        )


@rule(
    "L004",
    "wpa-not-page-multiple",
    "layout",
    Severity.ERROR,
    "The way-placement area size is not a positive multiple of the page size.",
)
def check_wpa_page_multiple(context: AnalysisContext) -> Iterator[Finding]:
    wpa, page = context.wpa_size, context.page_size
    if wpa is None or not wpa or page is None or page <= 0:
        return
    if wpa < 0 or wpa % page:
        yield Finding(
            Location("layout", context.subject, "wpa-size"),
            f"WPA size {wpa} is not a positive multiple of the "
            f"{page}-byte page (the I-TLB marks the area per page)",
            f"round the WPA up to {((max(wpa, 0) + page - 1) // page) * page} bytes",
        )


@rule(
    "L005",
    "wpa-way-conflict",
    "layout",
    Severity.WARNING,
    "Two occupied WPA lines share a mandated (set, way): the one-home "
    "guarantee is broken and they evict each other.",
)
def check_wpa_way_conflict(context: AnalysisContext) -> Iterator[Finding]:
    layout, geometry, wpa = context.layout, context.geometry, context.wpa_size
    if layout is None or geometry is None or not wpa or not geometry.is_sound():
        return
    homes: Dict[Tuple[int, int], int] = {}
    conflicts: List[Tuple[int, int]] = []
    for uid in sorted(layout.addresses):
        start = layout.addresses[uid]
        end = start + layout.sizes.get(uid, 0)
        if start < 0:
            continue  # L002's problem
        line = (start // geometry.line_size) * geometry.line_size
        while line < min(end, wpa):
            home = (geometry.set_index(line), geometry.mandated_way(line))
            first = homes.setdefault(home, line)
            if first != line:
                conflicts.append((first, line))
            line += geometry.line_size
    if conflicts:
        first, second = conflicts[0]
        yield Finding(
            _layout_location(context, f"line {second:#x}"),
            f"{len(conflicts)} WPA line(s) share a mandated (set, way) with "
            f"an earlier line; e.g. {first:#x} and {second:#x} both map to "
            f"set {geometry.set_index(first)}, way {geometry.mandated_way(first)}",
            f"keep the WPA within one cache coverage "
            f"({geometry.size_bytes} bytes)",
        )


@rule(
    "L006",
    "cold-in-wpa",
    "layout",
    Severity.WARNING,
    "A never-executed chain occupies the WPA while executed code sits outside.",
)
def check_cold_in_wpa(context: AnalysisContext) -> Iterator[Finding]:
    placed = _placed_chains(context)
    wpa = context.wpa_size
    if not placed or not wpa:
        return
    cold_inside = [c for c in placed if c.address < wpa and c.weight == 0]
    hot_outside = [c for c in placed if c.address >= wpa and c.weight > 0]
    if cold_inside and hot_outside:
        example = cold_inside[0]
        wasted = sum(c.size_bytes for c in cold_inside)
        yield Finding(
            _layout_location(context, f"chain at {example.address:#x}"),
            f"{wasted} byte(s) of never-executed code occupy the WPA "
            f"(e.g. chain at {example.address:#x}) while "
            f"{len(hot_outside)} executed chain(s) sit outside it",
            "re-run the way-placement pass so profiled code fills the WPA",
        )


@rule(
    "L007",
    "hot-outside-wpa",
    "layout",
    Severity.WARNING,
    "An executed chain is placed outside the WPA while a strictly lighter "
    "chain occupies it.",
)
def check_hot_outside_wpa(context: AnalysisContext) -> Iterator[Finding]:
    placed = _placed_chains(context)
    wpa = context.wpa_size
    if not placed or not wpa:
        return
    inside = [c for c in placed if c.address < wpa]
    outside = [c for c in placed if c.address >= wpa]
    if not inside or not outside:
        return
    lightest_inside = min(inside, key=lambda c: c.weight)
    displaced = [c for c in outside if c.weight > lightest_inside.weight]
    if displaced:
        heaviest = max(displaced, key=lambda c: c.weight)
        yield Finding(
            _layout_location(context, f"chain at {heaviest.address:#x}"),
            f"{len(displaced)} executed chain(s) lie outside the WPA although "
            f"lighter code occupies it; the heaviest (weight "
            f"{heaviest.weight}, at {heaviest.address:#x}) outweighs the "
            f"lightest chain inside (weight {lightest_inside.weight})",
            "grow the WPA or re-run the way-placement pass",
        )
