"""Concrete rules, one module per layer; importing them registers them."""

from repro.analysis.rules import (
    absint_rules,
    config_rules,
    interference_rules,
    layout_rules,
    program_rules,
)

__all__ = [
    "absint_rules",
    "config_rules",
    "interference_rules",
    "layout_rules",
    "program_rules",
]
