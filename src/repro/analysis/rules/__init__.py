"""Concrete rules, one module per layer; importing them registers them."""

from repro.analysis.rules import config_rules, layout_rules, program_rules

__all__ = ["config_rules", "layout_rules", "program_rules"]
