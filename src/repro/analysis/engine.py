"""The analyzer: run selected rules over a context, collect diagnostics.

The :class:`Analyzer` is configured once (rule selection, severity
overrides) and reused across many contexts — the CLI builds one per
invocation, the strict experiment pre-flight keeps one per runner.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.registry import DEFAULT_REGISTRY, RuleRegistry
from repro.errors import AnalysisError
from repro.program.program import Program

# Importing the rule modules populates DEFAULT_REGISTRY.
from repro.analysis.rules import config_rules, layout_rules, program_rules  # noqa: F401  isort: skip
from repro.verify import rules as verify_rules  # noqa: F401  isort: skip

__all__ = ["Analyzer", "analyze_program", "max_severity"]


class Analyzer:
    """Runs a rule selection over analysis contexts."""

    def __init__(
        self,
        registry: Optional[RuleRegistry] = None,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
        severity_overrides: Optional[Mapping[str, Severity]] = None,
    ):
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self._rules = self.registry.selection(select, ignore)
        self._overrides = dict(severity_overrides or {})
        for rule_id in self._overrides:
            self.registry.get(rule_id)  # unknown ids fail loudly

    @property
    def rule_ids(self) -> List[str]:
        return [rule.rule_id for rule in self._rules]

    def run(self, context: AnalysisContext) -> List[Diagnostic]:
        """All diagnostics for ``context``, sorted by (rule, location)."""
        diagnostics: List[Diagnostic] = []
        for rule in self._rules:
            severity = self._overrides.get(rule.rule_id, rule.severity)
            for finding in rule.check(context):
                diagnostics.append(
                    Diagnostic(
                        rule_id=rule.rule_id,
                        rule_name=rule.name,
                        severity=severity,
                        location=finding.location,
                        message=finding.message,
                        suggestion=finding.suggestion,
                    )
                )
        diagnostics.sort(key=Diagnostic.sort_key)
        return diagnostics

    def run_all(self, contexts: Iterable[AnalysisContext]) -> List[Diagnostic]:
        """Diagnostics for many contexts merged into one sorted list."""
        merged: List[Diagnostic] = []
        for context in contexts:
            merged.extend(self.run(context))
        merged.sort(key=Diagnostic.sort_key)
        return merged

    def check_errors(self, context: AnalysisContext, what: str) -> List[Diagnostic]:
        """Run and raise :class:`AnalysisError` on error-severity findings.

        Returns the (possibly empty) list of non-error diagnostics when the
        context is acceptable, so callers can surface warnings if they care.
        """
        diagnostics = self.run(context)
        errors = [d for d in diagnostics if d.severity >= Severity.ERROR]
        if errors:
            rendered = "\n".join(f"  - {d.render()}" for d in errors)
            raise AnalysisError(
                f"{what} failed static analysis with "
                f"{len(errors)} error(s):\n{rendered}",
                diagnostics=diagnostics,
            )
        return diagnostics


def max_severity(diagnostics: Iterable[Diagnostic]) -> Optional[Severity]:
    """The worst severity present, or ``None`` for a clean run."""
    worst: Optional[Severity] = None
    for diagnostic in diagnostics:
        if worst is None or diagnostic.severity > worst:
            worst = diagnostic.severity
    return worst


def analyze_program(
    program: Program,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Diagnostic]:
    """Program-rule diagnostics for one built program (P rules by default)."""
    analyzer = Analyzer(select=select if select is not None else ("P",), ignore=ignore)
    return analyzer.run(AnalysisContext.for_program(program))
