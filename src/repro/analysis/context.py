"""What the analyzer looks at: lenient *views* over possibly-invalid data.

The strict constructors (:class:`~repro.program.program.Program`,
:class:`~repro.layout.layouts.Layout`, :class:`~repro.cache.geometry.CacheGeometry`)
raise on the first structural problem, which is exactly what a diagnostics
pass must *not* do — it wants to see the broken artifact and report every
problem at once.  The view classes here hold the same information without
any validation, and can be built either from the strict objects (the common
case) or from raw pieces (unit tests, config files, half-built programs).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.cache.geometry import CacheGeometry
from repro.energy.params import EnergyParams
from repro.layout.layouts import Layout
from repro.program.basic_block import BasicBlock, BlockKind
from repro.program.function import Function
from repro.program.program import Program

__all__ = ["ProgramView", "LayoutView", "GeometrySpec", "AnalysisContext"]


class ProgramView:
    """A program as a bag of functions — no referential-integrity demands.

    Unresolvable successor labels, unknown callees, and unreachable
    functions are all representable; the program rules report them instead
    of the constructor refusing them.
    """

    def __init__(
        self,
        name: str,
        functions: Sequence[Function],
        entry: Optional[str] = None,
    ):
        self.name = name
        self.functions: Dict[str, Function] = {}
        for function in functions:
            self.functions.setdefault(function.name, function)
        if entry is None and functions:
            entry = functions[0].name
        self.entry = entry
        self._label_to_uid: Dict[str, int] = {}
        for function in self.functions.values():
            for block in function.blocks:
                self._label_to_uid.setdefault(
                    f"{block.function}:{block.label}", block.uid
                )
        self._blocks_by_uid: Dict[int, BasicBlock] = {
            block.uid: block for block in self.blocks()
        }

    @classmethod
    def from_program(cls, program: Program) -> "ProgramView":
        return cls(
            program.name,
            list(program.functions.values()),
            entry=program.entry_function.name,
        )

    # -- block access -------------------------------------------------------
    def blocks(self) -> Iterator[BasicBlock]:
        for function in self.functions.values():
            yield from function.blocks

    def block_by_uid(self, uid: int) -> BasicBlock:
        return self._blocks_by_uid[uid]

    @property
    def num_blocks(self) -> int:
        return len(self._blocks_by_uid)

    def uid_of_label(self, function: str, label: str) -> int:
        """Strict label lookup (Program-compatible, used by build_chains)."""
        qualified = f"{function}:{label}"
        try:
            return self._label_to_uid[qualified]
        except KeyError:
            from repro.errors import ProgramError

            raise ProgramError(f"no block {qualified!r} in program view") from None

    def resolve_label(self, block: BasicBlock, label: Optional[str]) -> Optional[int]:
        """Uid a successor label refers to, or ``None`` when it dangles."""
        if label is None:
            return None
        qualified = label if ":" in label else f"{block.function}:{label}"
        return self._label_to_uid.get(qualified)

    # -- reachability -------------------------------------------------------
    def successor_uids(self, block: BasicBlock) -> List[int]:
        """Resolvable successors (taken, fall-through, callee entry)."""
        successors: List[int] = []
        for label in (block.taken_label, block.fall_label):
            uid = self.resolve_label(block, label)
            if uid is not None:
                successors.append(uid)
        if block.kind is BlockKind.CALL and block.callee in self.functions:
            callee = self.functions[block.callee]
            if callee.blocks:
                successors.append(callee.entry.uid)
        return successors

    def reachable_from_entry(self) -> Set[int]:
        """Uids reachable from the entry block, following any edge kind."""
        if self.entry not in self.functions or not self.functions[self.entry].blocks:
            return set()
        start = self.functions[self.entry].entry.uid
        seen = {start}
        stack = [start]
        while stack:
            block = self._blocks_by_uid[stack.pop()]
            for uid in self.successor_uids(block):
                if uid not in seen:
                    seen.add(uid)
                    stack.append(uid)
        return seen


@dataclass(frozen=True)
class LayoutView:
    """Raw block placement: uid -> (address, size), no overlap checks."""

    program_name: str
    addresses: Mapping[int, int]
    sizes: Mapping[int, int]
    description: str = ""

    @classmethod
    def from_layout(cls, layout: Layout) -> "LayoutView":
        uids = layout.block_order
        return cls(
            layout.program_name,
            {uid: layout.address_of(uid) for uid in uids},
            {uid: layout.size_of(uid) for uid in uids},
            layout.description,
        )

    @property
    def end_address(self) -> int:
        if not self.addresses:
            return 0
        return max(
            self.addresses[uid] + self.sizes.get(uid, 0) for uid in self.addresses
        )


@dataclass(frozen=True)
class GeometrySpec:
    """Unvalidated cache geometry numbers (the strict twin is CacheGeometry)."""

    size_bytes: int
    ways: int
    line_size: int
    address_bits: int = 32

    @classmethod
    def from_geometry(cls, geometry: CacheGeometry) -> "GeometrySpec":
        return cls(
            geometry.size_bytes,
            geometry.ways,
            geometry.line_size,
            geometry.address_bits,
        )

    def is_sound(self) -> bool:
        """True when the strict CacheGeometry constructor would accept it."""

        def pow2(value: int) -> bool:
            return value > 0 and value & (value - 1) == 0

        if not (pow2(self.size_bytes) and pow2(self.ways) and pow2(self.line_size)):
            return False
        if self.line_size < 4 or self.size_bytes < self.ways * self.line_size:
            return False
        return self.tag_bits > 0

    # -- address slicing (meaningful only when is_sound()) ------------------
    @property
    def offset_bits(self) -> int:
        return max(self.line_size, 1).bit_length() - 1

    @property
    def set_bits(self) -> int:
        num_sets = self.size_bytes // max(self.ways * self.line_size, 1)
        return max(num_sets, 1).bit_length() - 1

    @property
    def way_bits(self) -> int:
        return max(self.ways, 1).bit_length() - 1

    @property
    def tag_bits(self) -> int:
        return self.address_bits - self.offset_bits - self.set_bits

    def set_index(self, address: int) -> int:
        return (address >> self.offset_bits) & ((1 << self.set_bits) - 1)

    def mandated_way(self, address: int) -> int:
        tag = address >> (self.offset_bits + self.set_bits)
        return tag & ((1 << self.way_bits) - 1)


def _energy_mapping(energy: Optional[Any]) -> Optional[Dict[str, float]]:
    """Normalise EnergyParams or a raw mapping to a plain name -> value dict."""
    if energy is None:
        return None
    if isinstance(energy, EnergyParams):
        return asdict(energy)
    merged: Dict[str, float] = {
        f.name: f.default for f in fields(EnergyParams)  # type: ignore[misc]
    }
    merged.update({str(key): float(value) for key, value in dict(energy).items()})
    return merged


@dataclass
class AnalysisContext:
    """Everything the rules may inspect; any field may be absent.

    Rules self-gate: a rule whose inputs are missing simply reports
    nothing, so one context type serves program-only validation, full
    benchmark pre-flights, and config-file lints alike.
    """

    subject: str = "config"
    program: Optional[ProgramView] = None
    layout: Optional[LayoutView] = None
    block_counts: Optional[Mapping[int, int]] = None
    edge_counts: Optional[Mapping[Tuple[int, int], int]] = None
    geometry: Optional[GeometrySpec] = None
    wpa_size: Optional[int] = None
    page_size: Optional[int] = None
    energy: Optional[Mapping[str, float]] = None
    grid_cells: Optional[Tuple[Any, ...]] = None
    #: Raw resilience settings (``retries``, ``timeout_s``, ``backoff_s``,
    #: ``fallback``) from a config file or a ResilienceConfig, unvalidated.
    resilience: Optional[Mapping[str, Any]] = None
    _cache: Dict[str, Any] = field(default_factory=dict, repr=False)

    @classmethod
    def for_program(cls, program: Program) -> "AnalysisContext":
        return cls(subject=program.name, program=ProgramView.from_program(program))

    @classmethod
    def for_experiment(
        cls,
        program: Optional[Program] = None,
        layout: Optional[Layout] = None,
        block_counts: Optional[Mapping[int, int]] = None,
        edge_counts: Optional[Mapping[Tuple[int, int], int]] = None,
        geometry: Optional[CacheGeometry] = None,
        wpa_size: Optional[int] = None,
        page_size: Optional[int] = None,
        energy: Optional[Any] = None,
        grid_cells: Optional[Sequence[Any]] = None,
        resilience: Optional[Mapping[str, Any]] = None,
        subject: Optional[str] = None,
    ) -> "AnalysisContext":
        """Build a context from the strict pipeline objects."""
        if subject is None:
            subject = program.name if program is not None else "config"
        return cls(
            subject=subject,
            program=ProgramView.from_program(program) if program is not None else None,
            layout=LayoutView.from_layout(layout) if layout is not None else None,
            block_counts=block_counts,
            edge_counts=edge_counts,
            geometry=(
                GeometrySpec.from_geometry(geometry) if geometry is not None else None
            ),
            wpa_size=wpa_size,
            page_size=page_size,
            energy=_energy_mapping(energy),
            grid_cells=tuple(grid_cells) if grid_cells is not None else None,
            resilience=dict(resilience) if resilience is not None else None,
        )
