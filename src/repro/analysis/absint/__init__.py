"""repro.analysis.absint — abstract interpretation of the cache.

An iterative must/may dataflow analysis over the interprocedural CFG,
the resolved layout, and the WPA placement.  Per ``(scheme, geometry,
wpa)`` configuration it derives, without replaying a single event:

* :mod:`~repro.analysis.absint.lattice` — the join-semilattice of
  abstract cache-set states (per-line must/may residency bitmasks with
  structural *budget-one* set proofs) and the sound transfer function;
* :mod:`~repro.analysis.absint.analysis` — the fixpoint engine: a
  call-threading ICFG, reverse-postorder iteration driven by the
  verifier's dominator machinery, per-site HIT/MISS/UNKNOWN
  classification, proven never-hit lines, loop headers;
* :mod:`~repro.analysis.absint.bounds` — static lower/upper bounds on
  every :class:`~repro.cache.access.FetchCounters` field and on priced
  energy, bracketing any real run (the S008 sanitizer invariant);
* :mod:`~repro.analysis.absint.prune` — sweep-pruning certificates:
  members of a grid family proven outcome-equivalent collapse to one
  representative and are reconstructed bit-identically;
* :mod:`~repro.analysis.absint.certify` — the ``repro analyze`` back
  end: deterministic per-workload JSON certificates.

Entry points: the ``repro analyze`` CLI subcommand, the ``A``-layer lint
rules (:mod:`repro.analysis.rules.absint_rules`), the S008 sanitizer
invariant, and ``ExperimentRunner(prune=True)`` /
``repro grid --prune-static``.  See ``docs/static_analysis.md``.
"""

from repro.analysis.absint.analysis import (
    CacheBehavior,
    LineSummary,
    absint_flow_graph,
    analyze_cache,
    block_lines,
)
from repro.analysis.absint.bounds import (
    BoundsViolation,
    CounterBounds,
    bounds_for_options,
    energy_bounds,
    footprint_bounds,
)
from repro.analysis.absint.certify import (
    AnalysisCertificate,
    ConfigAnalysis,
    analyze_workload,
    render_analysis_json,
    render_analysis_text,
)
from repro.analysis.absint.lattice import (
    AbstractState,
    CacheUniverse,
    Classification,
)
from repro.analysis.absint.prune import (
    PruneCertificate,
    layout_line_starts,
    plan_prune,
)

__all__ = [
    "AbstractState",
    "AnalysisCertificate",
    "BoundsViolation",
    "CacheBehavior",
    "CacheUniverse",
    "Classification",
    "ConfigAnalysis",
    "CounterBounds",
    "LineSummary",
    "PruneCertificate",
    "absint_flow_graph",
    "analyze_cache",
    "analyze_workload",
    "block_lines",
    "bounds_for_options",
    "energy_bounds",
    "footprint_bounds",
    "layout_line_starts",
    "plan_prune",
    "render_analysis_json",
    "render_analysis_text",
]
