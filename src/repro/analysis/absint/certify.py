"""Analysis certification: the ``repro analyze`` back end.

An *analysis certificate* for one workload bundles, per replay
configuration (the plain baseline and the fitted-WPA way-placement run):

1. the abstract-interpretation fixpoint over the interprocedural CFG —
   convergence, per-site hit/miss classification totals, proven
   never-hit lines, loop headers (:mod:`repro.analysis.absint.analysis`);
2. static lower/upper bounds on every :class:`FetchCounters` field and
   on the priced energy (:mod:`repro.analysis.absint.bounds`), refined
   with the fixpoint's never-hit lines;
3. a cross-check of the engine's *measured* counters against those
   bounds — the certificate's verdict; and
4. the ``A``-layer diagnostics the fixpoint supports.

A workload is **analyzed clean** when every configuration's measured
counters fall inside their static bounds.  The JSON rendering is
byte-for-byte deterministic for a given input (sorted keys, sorted
workloads), so CI can diff two consecutive runs, mirroring
``repro verify``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import Analyzer
from repro.analysis.absint.analysis import CacheBehavior, analyze_cache
from repro.analysis.absint.bounds import (
    BoundsViolation,
    CounterBounds,
    energy_bounds,
    footprint_bounds,
)
from repro.energy.cache_model import CacheEnergyModel
from repro.experiments.runner import ExperimentRunner
from repro.layout.placement import LayoutPolicy
from repro.sim.machine import MachineConfig, XSCALE_BASELINE
from repro.verify.certify import fitted_wpa_size

__all__ = [
    "AnalysisCertificate",
    "ConfigAnalysis",
    "analyze_workload",
    "render_analysis_json",
    "render_analysis_text",
]


@dataclass(frozen=True)
class ConfigAnalysis:
    """One ``(scheme, layout, wpa)`` configuration's static verdict."""

    scheme: str
    layout_policy: str
    wpa_size: int
    behavior: Optional[CacheBehavior]
    bounds: Optional[CounterBounds]
    violations: Tuple[BoundsViolation, ...]
    #: Priced totals of the bracket endpoints (icache_pj), when bounded.
    energy_low_pj: Optional[float]
    energy_high_pj: Optional[float]
    #: The measured engine energy, for the bracket cross-check.
    energy_pj: Optional[float]

    @property
    def bounds_hold(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        behavior = self.behavior
        payload: Dict[str, Any] = {
            "scheme": self.scheme,
            "layout": self.layout_policy,
            "wpa_size": self.wpa_size,
            "bounds_hold": self.bounds_hold,
            "violations": [v.render() for v in self.violations],
            "fixpoint": None,
            "bounds": self.bounds.to_dict() if self.bounds else None,
            "energy_bracket_pj": (
                [self.energy_low_pj, self.energy_high_pj]
                if self.energy_low_pj is not None
                else None
            ),
            "energy_pj": self.energy_pj,
        }
        if behavior is not None:
            payload["fixpoint"] = {
                "converged": behavior.converged,
                "rounds": behavior.rounds,
                "lines": len(behavior.universe.lines),
                "reachable_sites": behavior.reachable_sites,
                "guaranteed_hit_sites": behavior.guaranteed_hit_sites,
                "unknown_sites": behavior.unknown_sites,
                "unknown_fraction": round(behavior.unknown_fraction, 6),
                "never_hit_lines": len(behavior.never_hit),
                "unreachable_lines": len(behavior.unreachable_lines),
                "loop_headers": len(behavior.loop_headers),
            }
        return payload


@dataclass(frozen=True)
class AnalysisCertificate:
    """The static analyzer's verdict on one workload."""

    benchmark: str
    configs: Tuple[ConfigAnalysis, ...]
    diagnostics: Tuple[Diagnostic, ...]

    @property
    def ok(self) -> bool:
        return all(config.bounds_hold for config in self.configs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "ok": self.ok,
            "configs": [config.to_dict() for config in self.configs],
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def _analyze_config(
    runner: ExperimentRunner,
    benchmark: str,
    scheme: str,
    policy: LayoutPolicy,
    machine: MachineConfig,
    wpa_size: int,
) -> ConfigAnalysis:
    context = AnalysisContext.for_experiment(
        program=runner.workload(benchmark).program,
        layout=runner.layout(benchmark, policy),
        geometry=machine.icache,
        wpa_size=wpa_size or None,
        page_size=machine.page_size,
        subject=benchmark,
    )
    behavior = analyze_cache(
        context.program, context.layout, context.geometry, scheme, wpa_size
    )
    events = runner.events(benchmark, policy, machine.icache.line_size)
    bounds = footprint_bounds(
        scheme,
        events,
        machine.icache,
        wpa_size=wpa_size,
        itlb_entries=machine.itlb_entries,
        page_size=machine.page_size,
        never_hit=behavior.never_hit if behavior is not None else None,
    )
    report = runner.report(
        benchmark, scheme, machine, wpa_size=wpa_size, layout_policy=policy
    )
    violations: Tuple[BoundsViolation, ...] = ()
    energy_low = energy_high = None
    if bounds is not None:
        violations = tuple(bounds.violations(report.counters))
        model = CacheEnergyModel(
            machine.icache,
            runner.energy_params,
            organisation=runner.organisation,
            wayhint=scheme == "way-placement",
        )
        low, high = energy_bounds(bounds, model)
        energy_low, energy_high = low.icache_pj, high.icache_pj
    return ConfigAnalysis(
        scheme=scheme,
        layout_policy=policy.value,
        wpa_size=wpa_size,
        behavior=behavior,
        bounds=bounds,
        violations=violations,
        energy_low_pj=energy_low,
        energy_high_pj=energy_high,
        energy_pj=report.breakdown.icache_pj,
    )


def analyze_workload(
    runner: ExperimentRunner,
    benchmark: str,
    machine: MachineConfig = XSCALE_BASELINE,
    analyzer: Optional[Analyzer] = None,
) -> AnalysisCertificate:
    """Build one workload's analysis certificate (see module docstring).

    Covers the paper's two first-class configurations: the baseline on
    the original layout and way-placement on the profile-chained layout
    with the fitted (whole-binary, page-aligned) WPA.
    """
    wpa_size = fitted_wpa_size(
        runner, benchmark, LayoutPolicy.WAY_PLACEMENT, machine
    )
    configs = (
        _analyze_config(
            runner, benchmark, "baseline", LayoutPolicy.ORIGINAL, machine, 0
        ),
        _analyze_config(
            runner,
            benchmark,
            "way-placement",
            LayoutPolicy.WAY_PLACEMENT,
            machine,
            wpa_size,
        ),
    )
    if analyzer is None:
        analyzer = Analyzer(select=("A",))
    context = AnalysisContext.for_experiment(
        program=runner.workload(benchmark).program,
        layout=runner.layout(benchmark, LayoutPolicy.WAY_PLACEMENT),
        geometry=machine.icache,
        wpa_size=wpa_size or None,
        page_size=machine.page_size,
        subject=benchmark,
    )
    return AnalysisCertificate(
        benchmark=benchmark,
        configs=configs,
        diagnostics=tuple(analyzer.run(context)),
    )


def render_analysis_json(certificates: List[AnalysisCertificate]) -> str:
    """Deterministic JSON report over many certificates."""
    ordered = sorted(certificates, key=lambda c: c.benchmark)
    payload = {
        "certificates": [certificate.to_dict() for certificate in ordered],
        "summary": {
            "total": len(ordered),
            "clean": sum(1 for c in ordered if c.ok),
            "violated": sum(1 for c in ordered if not c.ok),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_analysis_text(certificates: List[AnalysisCertificate]) -> str:
    """Human-readable per-workload verdict lines."""
    lines: List[str] = []
    for certificate in sorted(certificates, key=lambda c: c.benchmark):
        status = "bounded" if certificate.ok else "VIOLATED"
        wp = certificate.configs[-1]
        fixpoint = wp.behavior
        detail = (
            f"unknown={fixpoint.unknown_fraction:.2f} "
            f"never_hit={len(fixpoint.never_hit)}"
            if fixpoint is not None
            else "fixpoint=unavailable"
        )
        lines.append(
            f"{certificate.benchmark:<14} {status:<9} "
            f"wpa={wp.wpa_size // 1024}KB {detail} "
            f"diagnostics={len(certificate.diagnostics)}"
        )
        for config in certificate.configs:
            for violation in config.violations:
                lines.append(f"    {config.scheme}: {violation.render()}")
        for diagnostic in certificate.diagnostics:
            lines.append(f"    {diagnostic.render()}")
    clean = sum(1 for c in certificates if c.ok)
    lines.append(f"{clean}/{len(certificates)} workload(s) inside static bounds")
    return "\n".join(lines)
