"""Fixpoint engine: must/may cache analysis over the interprocedural CFG.

The verifier's :func:`repro.verify.dataflow.build_flow_graph` gives every
call block an edge to *both* its callee and its continuation, which is
what dominator arguments want.  A cache analysis must not take that
shortcut: abstract state flowing call -> continuation would skip the
callee's cache effects and claim hits the callee may have evicted.  The
graph built here therefore routes calls **through** the callee:

* ``CALL``   -> callee entry only (the continuation edge is kept solely
  when the callee is unknown or empty, where there is nothing to skip);
* ``RETURN`` -> the continuation of every call into the returning
  function, plus the program entry when the entry function itself
  returns (the trace walker restarts there *without* flushing the
  cache);
* jumps / branches / fall-throughs -> their resolved labels.

Every dynamic path of the trace walker projects onto a path of this
graph, so a context-insensitive fixpoint over it is sound for both the
``must`` (all paths) and ``may`` (some path) directions.  Loop structure
is taken from the existing dominator machinery: reverse postorder drives
the iteration schedule and back edges (a successor dominating its
source) identify the loop headers reported in the result.

Blocks expand to the cache lines they occupy in the resolved layout, in
address order — exactly the per-line fetch stream the trace expansion
produces for one execution of the block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.analysis.absint.lattice import AbstractState, CacheUniverse, Classification
from repro.analysis.context import GeometrySpec, LayoutView, ProgramView
from repro.program.basic_block import BlockKind
from repro.verify.dataflow import (
    FlowGraph,
    dominators_of,
    entry_block_uid,
    immediate_dominators,
    reverse_postorder,
)

__all__ = [
    "CacheBehavior",
    "LineSummary",
    "absint_flow_graph",
    "analyze_cache",
    "block_lines",
]

#: Fixpoint rounds before the analysis gives up and reports everything
#: unknown.  The lattice is finite and the transfer monotone, so this is
#: a safety net, not an expected exit.
MAX_ROUNDS = 512


def absint_flow_graph(view: ProgramView) -> Optional[FlowGraph]:
    """The call-threading ICFG described in the module docstring."""
    entry = entry_block_uid(view)
    if entry is None:
        return None
    continuations: Dict[str, Set[int]] = {}
    for block in view.blocks():
        if block.kind is BlockKind.CALL and block.callee is not None:
            target = view.resolve_label(block, block.fall_label)
            if target is not None:
                continuations.setdefault(block.callee, set()).add(target)

    successors: Dict[int, Tuple[int, ...]] = {}
    for block in view.blocks():
        succs: List[int] = []
        if block.kind is BlockKind.CALL:
            callee = view.functions.get(block.callee or "")
            if callee is not None and callee.blocks:
                succs.append(callee.entry.uid)
            else:
                fall = view.resolve_label(block, block.fall_label)
                if fall is not None:
                    succs.append(fall)
        elif block.kind is BlockKind.RETURN:
            succs.extend(sorted(continuations.get(block.function, set())))
            if block.function == view.entry:
                succs.append(entry)
        elif block.kind is BlockKind.JUMP:
            taken = view.resolve_label(block, block.taken_label)
            if taken is not None:
                succs.append(taken)
        elif block.kind is BlockKind.CONDJUMP:
            for label in (block.taken_label, block.fall_label):
                uid = view.resolve_label(block, label)
                if uid is not None:
                    succs.append(uid)
        else:  # FALLTHROUGH
            fall = view.resolve_label(block, block.fall_label)
            if fall is not None:
                succs.append(fall)
        successors[block.uid] = tuple(dict.fromkeys(succs))

    predecessors: Dict[int, List[int]] = {uid: [] for uid in successors}
    for src in sorted(successors):
        for dst in successors[src]:
            if dst in predecessors:
                predecessors[dst].append(src)
    return FlowGraph(
        entry,
        successors,
        {uid: tuple(preds) for uid, preds in predecessors.items()},
    )


def block_lines(
    uid: int, layout: LayoutView, geometry: GeometrySpec
) -> List[int]:
    """Line addresses a block's placement covers, in fetch order."""
    address = layout.addresses.get(uid)
    size = layout.sizes.get(uid, 0)
    if address is None or size <= 0:
        return []
    offset_bits = geometry.offset_bits
    first = address >> offset_bits
    last = (address + size - 1) >> offset_bits
    return [line << offset_bits for line in range(first, last + 1)]


def _cyclic_uids(graph: FlowGraph, reachable: List[int]) -> Set[int]:
    """Uids on some cycle of the reachable subgraph (iterative Tarjan)."""
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    cyclic: Set[int] = set()
    counter = 0
    in_scope = set(reachable)

    for root in reachable:
        if root in index_of:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            succs = [
                s for s in graph.successors.get(node, ()) if s in in_scope
            ]
            advanced = False
            while child_index < len(succs):
                child = succs[child_index]
                child_index += 1
                if child not in index_of:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work[-1] = (node, child_index)
            if child_index >= len(succs):
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component: List[int] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1 or node in graph.successors.get(node, ()):
                        cyclic.update(component)
    return cyclic


@dataclass(frozen=True)
class LineSummary:
    """Static site statistics for one cache line."""

    line_addr: int
    sites: int  # reachable sites only
    guaranteed_hits: int
    guaranteed_misses: int
    unknown: int
    in_cycle: bool  # some reachable site sits on an ICFG cycle

    @property
    def conclusive(self) -> bool:
        return self.sites > 0 and self.unknown == 0


@dataclass(frozen=True)
class CacheBehavior:
    """Fixpoint result for one ``(layout, geometry, scheme, wpa)`` config."""

    scheme: str
    wpa_size: int
    universe: CacheUniverse
    converged: bool
    rounds: int
    #: uid -> ((line address, classification), ...) in fetch order;
    #: unreachable blocks carry ``Classification.UNREACHABLE`` sites.
    sites: Mapping[int, Tuple[Tuple[int, Classification], ...]]
    line_summaries: Mapping[int, LineSummary]
    #: Lines whose every reachable site is a guaranteed miss (and that
    #: have at least one); every dynamic fetch of such a line misses.
    never_hit: FrozenSet[int]
    #: Lines placed in the layout but only inside unreachable blocks.
    unreachable_lines: FrozenSet[int]
    loop_headers: Tuple[int, ...]
    reachable_sites: int
    unknown_sites: int

    @property
    def unknown_fraction(self) -> float:
        if not self.reachable_sites:
            return 0.0
        return self.unknown_sites / self.reachable_sites

    @property
    def guaranteed_hit_sites(self) -> int:
        return sum(s.guaranteed_hits for s in self.line_summaries.values())


def analyze_cache(
    program: Optional[ProgramView],
    layout: Optional[LayoutView],
    geometry: Optional[GeometrySpec],
    scheme: str,
    wpa_size: int,
) -> Optional[CacheBehavior]:
    """Run the fixpoint, or ``None`` when the inputs cannot support one."""
    if program is None or layout is None or geometry is None:
        return None
    if not geometry.is_sound():
        return None
    graph = absint_flow_graph(program)
    if graph is None:
        return None

    lines_of: Dict[int, List[int]] = {
        block.uid: block_lines(block.uid, layout, geometry)
        for block in program.blocks()
    }
    universe_addrs = sorted(
        {addr for lines in lines_of.values() for addr in lines}
    )
    if not universe_addrs:
        return None
    universe = CacheUniverse(universe_addrs, geometry, scheme, wpa_size)
    indices_of: Dict[int, List[int]] = {
        uid: [universe.index[addr] for addr in lines]
        for uid, lines in lines_of.items()
    }

    rpo = reverse_postorder(graph)
    idom = immediate_dominators(graph)
    headers: Set[int] = set()
    for src in rpo:
        for dst in graph.successors.get(src, ()):
            if dst == src or dst in dominators_of(src, idom):
                headers.add(dst)

    states: Dict[int, AbstractState] = {graph.entry: AbstractState.empty()}
    rounds = 0
    changed = True
    while changed and rounds < MAX_ROUNDS:
        changed = False
        rounds += 1
        for uid in rpo:
            state = states.get(uid)
            if state is None:
                continue
            out = universe.run_block(state, indices_of[uid])
            for succ in graph.successors.get(uid, ()):
                if succ not in indices_of:
                    continue
                previous = states.get(succ)
                joined = out if previous is None else previous.join(out)
                if joined != previous:
                    states[succ] = joined
                    changed = True
    converged = not changed

    cyclic = _cyclic_uids(graph, rpo)
    reachable = set(rpo)
    sites: Dict[int, Tuple[Tuple[int, Classification], ...]] = {}
    per_line: Dict[int, List[int]] = {}  # addr -> [hits, misses, unknown, cycle]
    reachable_sites = 0
    unknown_sites = 0
    reachable_lines: Set[int] = set()
    for block in program.blocks():
        uid = block.uid
        state = states.get(uid)
        if state is None or uid not in reachable:
            sites[uid] = tuple(
                (addr, Classification.UNREACHABLE) for addr in lines_of[uid]
            )
            continue
        verdicts: List[Tuple[int, Classification]] = []
        for addr, line_index in zip(lines_of[uid], indices_of[uid]):
            if converged:
                verdict = universe.classify(state, line_index)
            else:
                verdict = Classification.UNKNOWN
            state = universe.access(state, line_index)
            verdicts.append((addr, verdict))
            reachable_sites += 1
            reachable_lines.add(addr)
            tally = per_line.setdefault(addr, [0, 0, 0, 0])
            if verdict is Classification.HIT:
                tally[0] += 1
            elif verdict is Classification.MISS:
                tally[1] += 1
            else:
                tally[2] += 1
                unknown_sites += 1
            if uid in cyclic:
                tally[3] = 1
        sites[uid] = tuple(verdicts)

    line_summaries = {
        addr: LineSummary(
            line_addr=addr,
            sites=tally[0] + tally[1] + tally[2],
            guaranteed_hits=tally[0],
            guaranteed_misses=tally[1],
            unknown=tally[2],
            in_cycle=bool(tally[3]),
        )
        for addr, tally in sorted(per_line.items())
    }
    never_hit = frozenset(
        addr
        for addr, summary in line_summaries.items()
        if summary.sites > 0
        and summary.guaranteed_misses == summary.sites
    )
    unreachable_lines = frozenset(
        addr for addr in universe.lines if addr not in reachable_lines
    )
    return CacheBehavior(
        scheme=scheme,
        wpa_size=wpa_size,
        universe=universe,
        converged=converged,
        rounds=rounds,
        sites=sites,
        line_summaries=line_summaries,
        never_hit=never_hit,
        unreachable_lines=unreachable_lines,
        loop_headers=tuple(sorted(headers)),
        reachable_sites=reachable_sites,
        unknown_sites=unknown_sites,
    )
