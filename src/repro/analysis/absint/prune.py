"""Sweep-pruning certificates: prove family members outcome-equivalent.

Every way-placement counter is a function of the event stream, the
geometry, and the per-event *WPA flag* vector ``line_addr < wpa_size``
(the hint vector is the flag vector shifted by one event, and every
other option enters the kernels verbatim).  Two members of a batch
family therefore produce **bit-identical** :class:`FetchCounters` when
they agree on scheme and non-threshold options and their thresholds cut
the address line at the same place — i.e. when no line the program can
fetch lies between the two ``wpa_size`` values.

The proof is static: the candidate lines are the distinct line-aligned
addresses the resolved *layout* covers, a superset of any trace's lines
(the walker only fetches placed blocks), so equal flag vectors over the
layout lines imply equal flag vectors over every trace.  Each member's
threshold is classified by ``bisect_left(layout_line_starts, wpa_size)``;
members with equal ``(scheme, options - wpa_size, class)`` keys collapse
to the first member of the class, and the certificate records the
mapping so pruned cells are reconstructed from the representative's
counters bit-identically (only the report's own ``wpa_size`` metadata
differs, which pricing re-applies per cell).

A certificate is re-validated against the members it is applied to; a
mismatch (or an injected fault at the ``prune`` chaos site) makes the
supervisor fall back to unpruned execution.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Protocol, Sequence, Tuple

__all__ = ["PruneCertificate", "layout_line_starts", "plan_prune"]


class FamilyMember(Protocol):
    """Shape shared by ``engine.batch.BatchMember`` and grid cells."""

    scheme: str
    options: Mapping[str, Any]


def layout_line_starts(
    addresses: Mapping[int, int], sizes: Mapping[int, int], line_size: int
) -> Tuple[int, ...]:
    """Sorted distinct line-start addresses the placed blocks cover."""
    lines = set()
    for uid, address in addresses.items():
        size = sizes.get(uid, 0)
        if size <= 0:
            continue
        first = address // line_size
        last = (address + size - 1) // line_size
        lines.update(range(first, last + 1))
    return tuple(line * line_size for line in sorted(lines))


def _member_key(
    member: FamilyMember, line_starts: Sequence[int]
) -> Tuple[Any, ...]:
    options = dict(member.options)
    threshold: Any = options.pop("wpa_size", 0)
    if member.scheme == "way-placement":
        # Equal cut position => equal WPA flag vector on any trace.
        threshold = bisect_left(line_starts, threshold)
    return (member.scheme, tuple(sorted(options.items())), threshold)


class PruneCertificate:
    """Which members of one family are provably outcome-equivalent."""

    def __init__(
        self,
        line_starts: Sequence[int],
        members: Sequence[FamilyMember],
    ):
        self.line_starts: Tuple[int, ...] = tuple(line_starts)
        self.total: int = len(members)
        representative_of: Dict[Tuple[Any, ...], int] = {}
        clone_of: List[int] = []
        for index, member in enumerate(members):
            key = _member_key(member, self.line_starts)
            clone_of.append(representative_of.setdefault(key, index))
        #: For each member index, the index it is reconstructed from
        #: (itself when it runs for real).
        self.clone_of: Tuple[int, ...] = tuple(clone_of)
        self.representatives: Tuple[int, ...] = tuple(
            sorted(representative_of.values())
        )

    @property
    def pruned(self) -> int:
        return self.total - len(self.representatives)

    @property
    def pruned_fraction(self) -> float:
        return self.pruned / self.total if self.total else 0.0

    def validate(self, members: Sequence[FamilyMember]) -> bool:
        """Does the recorded mapping still describe these members?"""
        if len(members) != self.total:
            return False
        fresh = PruneCertificate(self.line_starts, members)
        return fresh.clone_of == self.clone_of

    def to_dict(self) -> Dict[str, Any]:
        return {
            "clone_of": list(self.clone_of),
            "line_starts": len(self.line_starts),
            "pruned": self.pruned,
            "representatives": list(self.representatives),
            "total": self.total,
        }


def plan_prune(
    line_starts: Sequence[int], members: Sequence[FamilyMember]
) -> Optional[PruneCertificate]:
    """Certificate for a family, or ``None`` when nothing can be pruned."""
    certificate = PruneCertificate(line_starts, members)
    if certificate.pruned == 0:
        return None
    return certificate
