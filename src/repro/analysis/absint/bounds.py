"""Static lower/upper bounds on :class:`FetchCounters` and energy.

Given only the *footprint* of a trace — which lines exist, how often each
is fetched, and how they map onto cache sets — every counter of the
baseline and way-placement replay is either exactly determined or
provably bracketed, without replaying the sequential cache state:

* **Exact fields.**  Search, precharge, way-hint, same-line, and I-TLB
  counts depend only on the event stream and the configuration, never on
  cache contents; they are reproduced here with the same closed forms the
  vectorized kernels use.
* **Interval fields** (hits / misses / fills / wp_fills / evictions)
  are bracketed per set:

  - every distinct line must miss at least once (the cache starts cold),
    so ``misses >= distinct lines``; a line the abstract interpretation
    proves can *never* hit (``CacheBehavior.never_hit``) contributes all
    of its occurrences instead;
  - a **budget-one** set (see ``repro.analysis.absint.lattice``: the
    lines mapping to it can structurally never evict each other) misses
    exactly once per distinct line and never evicts;
  - any other set misses at most once per event and evicts at most once
    per fill beyond the first (the very first fill of a set finds an
    invalid way);
  - ``hits = line_events - misses`` with the interval flipped, and
    ``fills = misses`` (both schemes fill on every miss).

The soundness of using the *trace* footprint as the line universe is
immediate: a replay only ever fills lines the trace touches.

Energy bounds follow because :class:`CacheEnergyModel` is monotone
non-decreasing in every counter (all per-event prices are non-negative),
so pricing the lower and upper counter vectors brackets the energy of
any real run.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple

import numpy as np

from repro.cache.access import FetchCounters
from repro.cache.geometry import CacheGeometry
from repro.energy.cache_model import CacheEnergyModel, EnergyBreakdown
from repro.engine.arrays import itlb_misses, line_census, way_hints, wpa_flags
from repro.trace.events import LineEventTrace

__all__ = [
    "BoundsViolation",
    "CounterBounds",
    "bounds_for_options",
    "energy_bounds",
    "footprint_bounds",
]

#: Schemes the bounds model (the same pair the fast kernels cover).
BOUNDED_SCHEMES = frozenset({"baseline", "way-placement"})

_BASELINE_OPTIONS = frozenset({"itlb_entries", "page_size", "same_line_skip"})
_WAY_PLACEMENT_OPTIONS = frozenset(
    {"wpa_size", "itlb_entries", "page_size", "same_line_skip", "wpa_base", "hint_initial"}
)


@dataclass(frozen=True)
class BoundsViolation:
    """One counter that escaped its static bracket."""

    field: str
    value: int
    lower: int
    upper: int

    def render(self) -> str:
        return (
            f"{self.field} = {self.value} outside static bounds "
            f"[{self.lower}, {self.upper}]"
        )


@dataclass(frozen=True)
class CounterBounds:
    """Field-wise bracket: ``lower <= counters <= upper`` for any real run."""

    scheme: str
    lower: FetchCounters
    upper: FetchCounters

    def violations(self, counters: FetchCounters) -> List[BoundsViolation]:
        out: List[BoundsViolation] = []
        for field in fields(FetchCounters):
            value = getattr(counters, field.name)
            low = getattr(self.lower, field.name)
            high = getattr(self.upper, field.name)
            if not low <= value <= high:
                out.append(BoundsViolation(field.name, value, low, high))
        return out

    def to_dict(self) -> Dict[str, List[int]]:
        """``{field: [lower, upper]}``, every field, sorted (JSON-stable)."""
        return {
            field.name: [
                getattr(self.lower, field.name),
                getattr(self.upper, field.name),
            ]
            for field in sorted(fields(FetchCounters), key=lambda f: f.name)
        }


def footprint_bounds(
    scheme: str,
    events: LineEventTrace,
    geometry: CacheGeometry,
    *,
    wpa_size: int = 0,
    itlb_entries: int = 32,
    page_size: int = 1024,
    same_line_skip: Optional[bool] = None,
    hint_initial: bool = False,
    never_hit: Optional[FrozenSet[int]] = None,
) -> Optional[CounterBounds]:
    """Bracket every counter of one replay config, or ``None`` if unmodelled.

    ``never_hit`` optionally carries the abstract interpretation's
    proven-miss lines (addresses); without it the bounds use the trace
    footprint alone, which is what the S008 sanitizer checks.
    """
    if scheme not in BOUNDED_SCHEMES:
        return None
    place = scheme == "way-placement"
    if same_line_skip is None:
        same_line_skip = place  # the schemes' constructor defaults
    if not place:
        wpa_size = 0
    proven_miss = never_hit or frozenset()

    n = events.num_events
    fetches = events.num_fetches
    ways = geometry.ways
    lower = FetchCounters()
    upper = FetchCounters()

    def exact(field: str, value: int) -> None:
        setattr(lower, field, value)
        setattr(upper, field, value)

    exact("fetches", fetches)
    exact("line_events", n)
    exact("itlb_accesses", n)
    exact("itlb_misses", itlb_misses(events, page_size, itlb_entries))

    if not place:
        if same_line_skip:
            exact("same_line_fetches", fetches - n)
            exact("full_searches", n)
            exact("ways_precharged", ways * n)
        else:
            exact("full_searches", fetches)
            exact("ways_precharged", ways * fetches)
    else:
        flags = wpa_flags(events, wpa_size)
        hints = way_hints(events, wpa_size, hint_initial)
        predicted = int(np.count_nonzero(hints))
        false_positives = int(np.count_nonzero(hints & ~flags))
        false_negatives = int(np.count_nonzero(flags & ~hints))
        full_searches = (n - predicted) + false_positives
        single_way = predicted
        ways_precharged = predicted + ways * full_searches
        exact("second_accesses", false_positives)
        exact("extra_access_cycles", false_positives)
        exact("hint_false_positives", false_positives)
        exact("hint_false_negatives", false_negatives)
        if same_line_skip:
            exact("same_line_fetches", fetches - n)
        elif n:
            extra = (events.counts - 1).astype(np.int64)
            wpa_extra = int(extra[flags].sum())
            other_extra = (fetches - n) - wpa_extra
            single_way += wpa_extra
            ways_precharged += wpa_extra
            full_searches += other_extra
            ways_precharged += ways * other_extra
        exact("full_searches", full_searches)
        exact("single_way_searches", single_way)
        exact("ways_precharged", ways_precharged)

    # ---- interval fields from the per-set footprint ----------------------
    lines, occurrences, set_indices, homes = line_census(events, geometry)
    per_set: Dict[int, List[Tuple[int, int, int]]] = {}
    for line, occ, set_index, home in zip(
        lines.tolist(), occurrences.tolist(), set_indices.tolist(), homes.tolist()
    ):
        per_set.setdefault(set_index, []).append((line, occ, home))

    miss_low = miss_high = 0
    evict_low = evict_high = 0
    wp_low = wp_high = 0
    for members in per_set.values():
        distinct = len(members)
        set_events = sum(occ for _line, occ, _home in members)
        if place:
            wpa_homes = [home for line, _occ, home in members if line < wpa_size]
            policy = distinct - len(wpa_homes)
            budget_one = (
                len(set(wpa_homes)) == len(wpa_homes)
                and policy <= ways
                and (not wpa_homes or not policy or min(wpa_homes) >= policy)
            )
        else:
            budget_one = distinct <= ways
        for line, occ, _home in members:
            miss_low += occ if line in proven_miss else 1
            if place and line < wpa_size:
                wp_low += 1
                wp_high += 1 if budget_one else occ
        miss_high += distinct if budget_one else set_events
        evict_low += max(0, distinct - ways)
        if not budget_one:
            evict_high += max(0, set_events - 1)

    lower.misses, upper.misses = miss_low, miss_high
    lower.fills, upper.fills = miss_low, miss_high
    lower.hits, upper.hits = n - miss_high, n - miss_low
    lower.evictions, upper.evictions = evict_low, evict_high
    lower.wp_fills, upper.wp_fills = wp_low, wp_high
    return CounterBounds(scheme, lower, upper)


def bounds_for_options(
    scheme: str,
    events: LineEventTrace,
    geometry: CacheGeometry,
    options: Mapping[str, Any],
) -> Optional[CounterBounds]:
    """:func:`footprint_bounds` from a kernel-style options mapping.

    Mirrors the option gating of ``engine.kernels.fast_counters``:
    anything the bounds do not model returns ``None`` so callers skip the
    check instead of mis-bracketing.
    """
    allowed = _WAY_PLACEMENT_OPTIONS if scheme == "way-placement" else _BASELINE_OPTIONS
    if scheme not in BOUNDED_SCHEMES or not set(options) <= allowed:
        return None
    if options.get("wpa_base", 0) != 0:
        return None
    kwargs: Dict[str, Any] = {
        key: options[key]
        for key in ("wpa_size", "itlb_entries", "page_size", "hint_initial")
        if key in options
    }
    if "same_line_skip" in options:
        kwargs["same_line_skip"] = options["same_line_skip"]
    return footprint_bounds(scheme, events, geometry, **kwargs)


def energy_bounds(
    bounds: CounterBounds, model: CacheEnergyModel
) -> Tuple[EnergyBreakdown, EnergyBreakdown]:
    """Price the bracket's endpoints.

    Sound because every :class:`CacheEnergyModel` term is a non-negative
    price times a counter (and the exact fields coincide in both
    endpoints), so the model is monotone over the bracketed fields.
    """
    return model.energy(bounds.lower), model.energy(bounds.upper)
