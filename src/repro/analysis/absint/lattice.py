"""Join-semilattice of abstract cache-set states for the must/may analysis.

The concrete domain is the contents of every cache set after some prefix
of the fetch stream.  The abstract domain tracks, per program point, two
bitmasks over the *line universe* (every line the resolved layout can
ever fetch, sorted by address):

* ``must`` — lines guaranteed resident on **every** path to this point;
* ``may`` — lines possibly resident on **some** path to this point.

``must`` under-approximates and ``may`` over-approximates the concrete
contents, so ``must <= contents <= may`` is the soundness invariant; the
join is ``(must1 & must2, may1 | may2)`` and the partial order is
"smaller ``must`` and larger ``may`` is less precise".

The transfer function models the two replay schemes exactly as the
reference implementations do (see ``repro.schemes``):

* **baseline** — every miss fills the per-set round-robin way and the
  pointer advances only on policy fills;
* **way-placement** — a line below ``wpa_size`` ("WPA line") is only ever
  resident in its address-mandated way (forced fills bypass the
  round-robin pointer), everything else takes the policy path.

Precision comes from two structural facts proved per set over the line
universe:

* **Budget-one sets.**  If the lines mapping to a set can never cause an
  eviction — for baseline, at most ``ways`` distinct lines; for
  way-placement, pairwise-distinct mandated ways for the WPA lines and
  few enough policy lines that the round-robin pointer can never reach a
  mandated way — then every fill is permanent and ``must`` only grows.
* **Definite forced evictions.**  A *guaranteed* miss on a WPA line
  force-fills its mandated way on every path, so any other WPA line with
  the same (set, way) home is definitely evicted and leaves ``may``.
  This is what lets the analysis *prove* way-placement thrash.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.context import GeometrySpec

__all__ = ["AbstractState", "CacheUniverse", "Classification"]


class Classification(enum.Enum):
    """Static verdict for one (block, line) access site."""

    HIT = "hit"
    MISS = "miss"
    UNKNOWN = "unknown"
    UNREACHABLE = "unreachable"


@dataclass(frozen=True)
class AbstractState:
    """One point's abstract cache contents: ``must``/``may`` line bitmasks."""

    must: int
    may: int

    def join(self, other: "AbstractState") -> "AbstractState":
        return AbstractState(self.must & other.must, self.may | other.may)

    @staticmethod
    def empty() -> "AbstractState":
        """The entry state: a cold cache holds nothing, certainly."""
        return AbstractState(0, 0)


class CacheUniverse:
    """Line universe of one ``(layout, geometry, scheme, wpa)`` config.

    Precomputes, per line index, everything the transfer function needs:
    set membership masks, mandated-way conflict masks, and the per-set
    budget-one proof described in the module docstring.
    """

    def __init__(
        self,
        line_addrs: Sequence[int],
        geometry: GeometrySpec,
        scheme: str,
        wpa_size: int,
    ):
        self.geometry = geometry
        self.scheme = scheme
        self.wpa_size = wpa_size
        self.lines: List[int] = sorted(dict.fromkeys(line_addrs))
        self.index: Dict[int, int] = {addr: i for i, addr in enumerate(self.lines)}
        ways = max(geometry.ways, 1)
        place = scheme == "way-placement"
        self.is_wpa: List[bool] = [place and addr < wpa_size for addr in self.lines]
        self.home: List[int] = [geometry.mandated_way(addr) for addr in self.lines]
        self.set_of: List[int] = [geometry.set_index(addr) for addr in self.lines]

        members_of: Dict[int, List[int]] = {}
        for i, set_index in enumerate(self.set_of):
            members_of.setdefault(set_index, []).append(i)

        size = len(self.lines)
        #: Per set: True when no access sequence over the universe can evict.
        self.set_budget_one: Dict[int, bool] = {}
        self.budget_one: List[bool] = [False] * size
        #: Other lines of the same set (cleared by an unconstrained policy fill).
        self._others_mask: List[int] = [0] * size
        #: WPA lines sharing this WPA line's (set, mandated way) home.
        self._same_home_mask: List[int] = [0] * size
        #: Lines a forced fill of this WPA line can possibly evict.
        self._conflict_mask: List[int] = [0] * size

        for set_index, members in members_of.items():
            wpa_members = [i for i in members if self.is_wpa[i]]
            policy = [i for i in members if not self.is_wpa[i]]
            homes = [self.home[i] for i in wpa_members]
            budget_one = (
                len(set(homes)) == len(homes)
                and len(policy) <= ways
                and (not wpa_members or not policy or min(homes) >= len(policy))
            )
            self.set_budget_one[set_index] = budget_one
            set_mask = 0
            for i in members:
                set_mask |= 1 << i
            for i in members:
                self.budget_one[i] = budget_one
                self._others_mask[i] = set_mask & ~(1 << i)
                if self.is_wpa[i]:
                    same_home = 0
                    for j in wpa_members:
                        if j != i and self.home[j] == self.home[i]:
                            same_home |= 1 << j
                    self._same_home_mask[i] = same_home
                    conflict = same_home
                    if not budget_one:
                        for j in policy:
                            conflict |= 1 << j
                    self._conflict_mask[i] = conflict

    @property
    def num_lines(self) -> int:
        return len(self.lines)

    def classify(self, state: AbstractState, line_index: int) -> Classification:
        bit = 1 << line_index
        if state.must & bit:
            return Classification.HIT
        if not state.may & bit:
            return Classification.MISS
        return Classification.UNKNOWN

    def access(self, state: AbstractState, line_index: int) -> AbstractState:
        """Abstract effect of one line access (join of hit/fill branches)."""
        bit = 1 << line_index
        must, may = state.must, state.may
        if must & bit:  # guaranteed hit: replacement state is untouched
            return state
        if self.is_wpa[line_index]:
            # Possible (or certain) forced fill into the mandated way: any
            # line that could occupy that way is no longer guaranteed, and
            # on a *certain* miss the same-home WPA lines — resident in
            # that way or nowhere — are definitely evicted.
            new_must = (must & ~self._conflict_mask[line_index]) | bit
            new_may = may | bit
            if not may & bit:
                new_may &= ~self._same_home_mask[line_index]
            return AbstractState(new_must, new_may)
        if self.budget_one[line_index]:
            # Proven eviction-free set: a fill is permanent.
            return AbstractState(must | bit, may | bit)
        # Unconstrained round-robin fill: the pointer may target any way,
        # so only the accessed line itself is guaranteed afterwards.
        return AbstractState((must & ~self._others_mask[line_index]) | bit, may | bit)

    def run_block(self, state: AbstractState, line_indices: Sequence[int]) -> AbstractState:
        for line_index in line_indices:
            state = self.access(state, line_index)
        return state
