"""Rendering diagnostics for humans (text) and machines (JSON).

Both reporters consume diagnostics in any order and emit them sorted by
``(rule id, location, message)``; the JSON form additionally serialises
with sorted keys, so byte-identical input state yields byte-identical
output — a hard requirement for CI diffing.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.analysis.diagnostics import Diagnostic, Severity

__all__ = ["render_text", "render_json", "summarize"]


def _sorted(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    return sorted(diagnostics, key=Diagnostic.sort_key)


def summarize(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    """Counts per severity plus a total, with every severity present."""
    counts = {str(severity): 0 for severity in Severity}
    total = 0
    for diagnostic in diagnostics:
        counts[str(diagnostic.severity)] += 1
        total += 1
    counts["total"] = total
    return counts


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """Human-readable report: one line per diagnostic plus a summary."""
    ordered = _sorted(diagnostics)
    lines = [diagnostic.render() for diagnostic in ordered]
    summary = summarize(ordered)
    if summary["total"] == 0:
        lines.append("no problems found")
    else:
        lines.append(
            f"{summary['total']} diagnostic(s): "
            f"{summary['error']} error(s), "
            f"{summary['warning']} warning(s), "
            f"{summary['info']} info"
        )
    return "\n".join(lines)


def render_json(diagnostics: Iterable[Diagnostic]) -> str:
    """Deterministic JSON: stable diagnostic order and sorted object keys."""
    ordered = _sorted(diagnostics)
    payload = {
        "diagnostics": [diagnostic.to_dict() for diagnostic in ordered],
        "summary": summarize(ordered),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
