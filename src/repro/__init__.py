"""repro — reproduction of *Instruction Cache Energy Saving Through
Compiler Way-Placement* (Jones, Bartolini, De Bus, Cavazos, O'Boyle;
DATE 2008).

The package implements the paper's full stack from scratch: an ARM-like
ISA and link-time program representation, the profile-guided way-placement
compiler pass, an XScale-style CAM instruction cache with the paper's
microarchitectural extensions (per-page way-placement bits in the I-TLB and
the global way-hint bit), the way-memoization comparator, analytic energy
models, 23 synthetic MiBench-like workloads, and a harness that regenerates
every figure of the paper's evaluation.

Quick start::

    from repro import (
        load_benchmark, branch_models_for, SMALL_INPUT, LARGE_INPUT,
        profile_program, way_placement_layout, original_layout, simulate,
    )

    workload = load_benchmark("crc")
    profile = profile_program(
        workload.program, branch_models_for(workload, SMALL_INPUT), 100_000
    )
    layout = way_placement_layout(workload.program, profile.block_counts)
    report = simulate(
        workload.program, layout, "way-placement",
        branch_models_for(workload, LARGE_INPUT),
        max_instructions=400_000, wpa_size=32 * 1024,
    )

See ``examples/`` for complete programs and ``benchmarks/`` for the
figure-by-figure reproduction harness.
"""

from repro.errors import AnalysisError, ReproError
from repro.analysis import (
    AnalysisContext,
    Analyzer,
    Diagnostic,
    Severity,
    analyze_program,
    render_json,
    render_text,
)
from repro.binary import BinaryImage, emit_image, load_image
from repro.cache import CacheGeometry, CamCache, InstructionTlb, WayHintBit, FetchCounters
from repro.energy import (
    EnergyParams,
    CacheEnergyModel,
    EnergyBreakdown,
    ProcessorEnergyModel,
    ProcessorReport,
)
from repro.experiments import (
    ExperimentRunner,
    figure4,
    figure5,
    figure6,
)
from repro.layout import (
    Layout,
    LayoutPolicy,
    build_chains,
    choose_wpa_size,
    make_layout,
    original_layout,
    pettis_hansen_layout,
    way_placement_layout,
)
from repro.profiling import ProfileData, profile_program
from repro.program import BasicBlock, Program, ProgramBuilder, function_from_assembly
from repro.schemes import make_scheme, SCHEME_NAMES
from repro.sim import (
    MachineConfig,
    XSCALE_BASELINE,
    SimulationReport,
    NormalisedResult,
    Simulator,
    simulate,
    table1_rows,
)
from repro.trace import BranchModelMap, CfgWalker, LineEventTrace
from repro.workloads import (
    MIBENCH_BENCHMARKS,
    SMALL_INPUT,
    LARGE_INPUT,
    benchmark_names,
    branch_models_for,
    generate_workload,
    load_benchmark,
    SynthSpec,
    Workload,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    # analysis
    "AnalysisContext",
    "AnalysisError",
    "Analyzer",
    "Diagnostic",
    "Severity",
    "analyze_program",
    "render_json",
    "render_text",
    # binary
    "BinaryImage",
    "emit_image",
    "load_image",
    # cache
    "CacheGeometry",
    "CamCache",
    "InstructionTlb",
    "WayHintBit",
    "FetchCounters",
    # energy
    "EnergyParams",
    "CacheEnergyModel",
    "EnergyBreakdown",
    "ProcessorEnergyModel",
    "ProcessorReport",
    # experiments
    "ExperimentRunner",
    "figure4",
    "figure5",
    "figure6",
    # layout
    "Layout",
    "LayoutPolicy",
    "build_chains",
    "choose_wpa_size",
    "make_layout",
    "original_layout",
    "pettis_hansen_layout",
    "way_placement_layout",
    # profiling
    "ProfileData",
    "profile_program",
    # program
    "BasicBlock",
    "Program",
    "ProgramBuilder",
    "function_from_assembly",
    # schemes
    "make_scheme",
    "SCHEME_NAMES",
    # sim
    "MachineConfig",
    "XSCALE_BASELINE",
    "SimulationReport",
    "NormalisedResult",
    "Simulator",
    "simulate",
    "table1_rows",
    # trace
    "BranchModelMap",
    "CfgWalker",
    "LineEventTrace",
    # workloads
    "MIBENCH_BENCHMARKS",
    "SMALL_INPUT",
    "LARGE_INPUT",
    "benchmark_names",
    "branch_models_for",
    "generate_workload",
    "load_benchmark",
    "SynthSpec",
    "Workload",
    "__version__",
]
