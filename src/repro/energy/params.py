"""Energy-model parameters (picojoules, 180nm-era embedded process).

The constants are calibrated, not measured: absolute joules are outside the
scope of a reproduction (the authors used a proprietary XScale power model),
but the *ratios* that drive the paper's results are made explicit here:

* ``cam_pj_per_way_bit`` prices a CAM tag search per (way x tag-bit); a full
  32-way search of 22-bit tags at the 32KB reference point costs
  ``32 * 22 * 0.2 = 140.8`` pJ.
* ``data_read_pj`` prices reading one instruction word from the matched
  way's data array (~142 pJ at the reference size) — deliberately on par
  with the full tag search, which pins the way-placement saving near the
  paper's ~50% for the 32KB/32-way configuration.
* ``tag_size_exponent`` grows tag-search energy with total cache size at
  fixed associativity (tag broadcast crosses more sub-banks); this is what
  makes bigger caches save *more*, as in the paper's Figure 6.
* The way-memoization overheads use the paper's own figure: links add 21%
  to the data side, charged on fills and reads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EnergyModelError

__all__ = ["EnergyParams"]

#: Cache size all size-dependent scalings are normalised to.
REFERENCE_SIZE_BYTES = 32 * 1024


@dataclass(frozen=True)
class EnergyParams:
    """Technology/energy constants, all in picojoules."""

    # CAM tag path
    cam_pj_per_way_bit: float = 0.22  # per way searched, per tag bit, at 32KB
    tag_size_exponent: float = 0.7  # tag-search scale: (size/32KB) ** exp
    way_mux_pj: float = 0.1  # way-select mux on a single-way access

    # Data array
    data_read_pj: float = 160.0  # one word from the matched way, at 32KB
    data_size_exponent: float = 0.1  # data-read scale: (size/32KB) ** exp

    # Fills and memory
    fill_pj_per_bit: float = 0.5  # writing a fetched line into the array
    memory_pj_per_bit: float = 6.0  # off-chip read, per line bit

    # I-TLB and the way-hint bit
    itlb_search_pj: float = 12.0  # fully-associative 32-entry search
    itlb_fill_pj: float = 20.0  # installing a translation
    wayhint_pj: float = 0.05  # reading/updating the single hint bit

    # Way-memoization link machinery (Ma et al.).  The *storage* overhead is
    # the paper's 21% (9 x 6-bit links per 256-bit line); the dynamic *read*
    # amplification is higher because every fetch reads its slot link plus
    # the line's shared sequential link and their valid bits.
    link_fill_overhead: float = 0.21  # extra fraction on line fills (storage)
    link_data_overhead: float = 0.28  # extra fraction on data reads (dynamic)
    link_write_pj: float = 24.0  # writing one link entry into the data array

    # Filter cache (Kin et al.)
    l0_read_pj: float = 20.0  # L0 hit access
    l0_fill_pj_per_bit: float = 0.3  # refilling an L0 line from L1

    # Scratchpad memory (Ravindran et al.): a tagless fetch from an
    # 8KB-class SRAM macro — no CAM search, but still a word read from an
    # array a quarter the size of the reference I-cache data array.
    spm_read_pj: float = 60.0

    # Rest of the processor (XTREM's role): everything that is not the
    # instruction-fetch path.  Split into a flat per-instruction term, a
    # large per-memory-operation term (address generation, D-cache access,
    # write buffers), and a per-cycle term (clock tree, leakage) — so
    # register-resident kernels (crc, sha) spend a larger *fraction* of
    # processor energy in the I-cache than memory-streaming codes, exactly
    # the per-benchmark ED spread of the paper's Figure 4(b).
    core_pj_per_instruction: float = 600.0
    mem_op_extra_pj: float = 2200.0
    core_pj_per_cycle: float = 500.0

    def __post_init__(self) -> None:
        for name in (
            "cam_pj_per_way_bit",
            "data_read_pj",
            "fill_pj_per_bit",
            "memory_pj_per_bit",
            "itlb_search_pj",
            "itlb_fill_pj",
            "wayhint_pj",
            "link_write_pj",
            "l0_read_pj",
            "l0_fill_pj_per_bit",
            "spm_read_pj",
            "core_pj_per_instruction",
            "mem_op_extra_pj",
            "core_pj_per_cycle",
            "way_mux_pj",
        ):
            if getattr(self, name) < 0:
                raise EnergyModelError(f"{name} must be non-negative")
        if not 0.0 <= self.link_data_overhead <= 1.0:
            raise EnergyModelError("link_data_overhead must be a fraction in [0, 1]")
        if not 0.0 <= self.link_fill_overhead <= 1.0:
            raise EnergyModelError("link_fill_overhead must be a fraction in [0, 1]")
        if not 0.0 <= self.tag_size_exponent <= 2.0:
            raise EnergyModelError("tag_size_exponent out of sane range [0, 2]")
        if not 0.0 <= self.data_size_exponent <= 2.0:
            raise EnergyModelError("data_size_exponent out of sane range [0, 2]")

    def size_scale(self, size_bytes: int, exponent: float) -> float:
        """(size / 32KB) ** exponent — shared by tag and data scalings."""
        return (size_bytes / REFERENCE_SIZE_BYTES) ** exponent
