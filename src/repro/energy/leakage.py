"""Leakage energy and drowsy caches — the paper's 'orthogonal' axis.

The related-work section points at drowsy caches (Flautner et al.) and
cache decay (Kaxiras et al.) as leakage techniques that are *orthogonal* to
way-placement "and can therefore be used together for additional energy
savings".  This module makes that claim checkable: an event-driven model of
per-line activity puts lines that have not been fetched for a decay window
into a low-leakage drowsy state, with a wake penalty on the next access.

The model runs *alongside* any fetch scheme (it consumes the same line-event
trace), so the ablation bench can overlay drowsy leakage on the baseline and
on way-placement and verify the savings compose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cache.cam_cache import CamCache
from repro.cache.geometry import CacheGeometry
from repro.errors import EnergyModelError
from repro.trace.events import LineEventTrace

__all__ = ["LeakageParams", "DrowsyStats", "DrowsyModel"]


@dataclass(frozen=True)
class LeakageParams:
    """Leakage constants (picojoules / cycles)."""

    leak_pj_per_line_cycle: float = 0.03  # a powered line's leakage per cycle
    drowsy_factor: float = 0.10  # drowsy leakage relative to active
    decay_window_cycles: int = 2000  # inactivity before a line goes drowsy
    wake_cycles: int = 1  # pipeline penalty to wake a drowsy line

    def __post_init__(self) -> None:
        if self.leak_pj_per_line_cycle < 0:
            raise EnergyModelError("leakage per line-cycle must be non-negative")
        if not 0.0 <= self.drowsy_factor <= 1.0:
            raise EnergyModelError("drowsy_factor must be a fraction in [0, 1]")
        if self.decay_window_cycles < 1:
            raise EnergyModelError("decay window must be at least one cycle")
        if self.wake_cycles < 0:
            raise EnergyModelError("wake penalty must be non-negative")


@dataclass(frozen=True)
class DrowsyStats:
    """Outcome of a drowsy simulation over one trace."""

    total_cycles: int
    num_lines: int
    active_line_cycles: int
    drowsy_line_cycles: int
    wakes: int
    wake_penalty_cycles: int

    @property
    def drowsy_fraction(self) -> float:
        """Fraction of line-cycles spent drowsy."""
        total = self.active_line_cycles + self.drowsy_line_cycles
        return self.drowsy_line_cycles / total if total else 0.0

    def leakage_pj(self, params: LeakageParams) -> float:
        """Leakage with the drowsy policy enabled."""
        return params.leak_pj_per_line_cycle * (
            self.active_line_cycles
            + self.drowsy_line_cycles * params.drowsy_factor
        )

    def always_on_leakage_pj(self, params: LeakageParams) -> float:
        """Leakage of the same run with every line always powered."""
        return (
            params.leak_pj_per_line_cycle * self.num_lines * self.total_cycles
        )

    def leakage_saving(self, params: LeakageParams) -> float:
        """Fraction of leakage energy the drowsy policy removes."""
        always_on = self.always_on_leakage_pj(params)
        if always_on == 0:
            return 0.0
        return 1.0 - self.leakage_pj(params) / always_on


class DrowsyModel:
    """Event-driven drowsy-line tracking over a line-event trace.

    Time is measured in fetch cycles (one per instruction, the base CPI of
    the machine model).  Cache contents follow the baseline round-robin
    placement; each (set, way) slot remembers when its resident line was
    last fetched, accumulating active cycles up to the decay window and
    drowsy cycles beyond it.  Slots holding no line yet are drowsy from
    time zero (cold lines are powered down).
    """

    def __init__(self, geometry: CacheGeometry, params: LeakageParams = LeakageParams()):
        self.geometry = geometry
        self.params = params

    def run(self, events: LineEventTrace) -> DrowsyStats:
        geometry = self.geometry
        window = self.params.decay_window_cycles
        cache = CamCache(geometry)
        offset_bits = geometry.offset_bits
        set_mask = geometry.num_sets - 1
        tag_shift = offset_bits + geometry.set_bits

        last_access: Dict[Tuple[int, int], int] = {}
        active = 0
        drowsy = 0
        wakes = 0
        now = 0

        find = cache.find
        fill = cache.fill

        for addr, count in zip(events.line_addrs.tolist(), events.counts.tolist()):
            set_index = (addr >> offset_bits) & set_mask
            tag = addr >> tag_shift
            way = find(set_index, tag)
            if way < 0:
                way, _ = fill(set_index, tag)
            slot = (set_index, way)
            previous = last_access.get(slot)
            if previous is not None:
                idle = now - previous
                if idle > window:
                    active += window
                    drowsy += idle - window
                    wakes += 1
                else:
                    active += idle
            else:
                drowsy += now  # cold slot: powered down since t=0
                if now > 0:
                    wakes += 1
            active += count  # the line is active while being fetched
            now += count
            last_access[slot] = now

        # Flush: bring every slot's accounting up to the end of the run.
        total_slots = geometry.num_sets * geometry.ways
        for slot, timestamp in last_access.items():
            idle = now - timestamp
            if idle > window:
                active += window
                drowsy += idle - window
            else:
                active += idle
        untouched = total_slots - len(last_access)
        drowsy += untouched * now

        return DrowsyStats(
            total_cycles=now,
            num_lines=total_slots,
            active_line_cycles=active,
            drowsy_line_cycles=drowsy,
            wakes=wakes,
            wake_penalty_cycles=wakes * self.params.wake_cycles,
        )
