"""Pricing cache activity: counters x geometry x parameters -> picojoules.

``CacheEnergyModel`` exposes the per-event energies (useful on their own for
unit tests and what-if analysis) and :meth:`energy`, which prices a whole
:class:`~repro.cache.access.FetchCounters` into an :class:`EnergyBreakdown`.

Two organisation modes:

* ``cam`` (default, XScale-like): tag search energy scales with the ways
  actually precharged; the data array reads only the matched way, so data
  energy is per fetch and scheme-independent.
* ``ram`` (conventional SRAM set-associative): *data* for all ways is read
  in parallel with the tags on a full access, so single-way accesses save
  data energy too.  Used by the RAM-organisation ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.access import FetchCounters
from repro.cache.geometry import CacheGeometry
from repro.energy.params import EnergyParams
from repro.errors import EnergyModelError

__all__ = ["CacheEnergyModel", "EnergyBreakdown"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Instruction-fetch-path energy, by component, in picojoules."""

    tag_pj: float = 0.0  # CAM searches / tag comparisons
    data_pj: float = 0.0  # data-array reads (incl. memo link-read overhead)
    fill_pj: float = 0.0  # writing fetched lines into the array
    link_pj: float = 0.0  # way-memoization link writes
    l0_pj: float = 0.0  # filter-cache accesses and refills
    spm_pj: float = 0.0  # scratchpad fetches
    hint_pj: float = 0.0  # way-hint bit
    itlb_pj: float = 0.0  # I-TLB searches and fills
    memory_pj: float = 0.0  # off-chip line fetches

    @property
    def icache_pj(self) -> float:
        """The paper's 'instruction cache energy': everything inside the
        cache macro (tags, data, fills, links, L0, hint bit)."""
        return (
            self.tag_pj
            + self.data_pj
            + self.fill_pj
            + self.link_pj
            + self.l0_pj
            + self.spm_pj
            + self.hint_pj
        )

    @property
    def fetch_path_pj(self) -> float:
        """Cache macro plus I-TLB plus memory traffic."""
        return self.icache_pj + self.itlb_pj + self.memory_pj


class CacheEnergyModel:
    """Analytic per-access energy model for one cache geometry."""

    def __init__(
        self,
        geometry: CacheGeometry,
        params: EnergyParams = EnergyParams(),
        organisation: str = "cam",
        memo_links: bool = False,
        wayhint: bool = False,
        l0_size: int = 0,
    ):
        if organisation not in ("cam", "ram"):
            raise EnergyModelError(f"organisation must be 'cam' or 'ram', got {organisation!r}")
        self.geometry = geometry
        self.params = params
        self.organisation = organisation
        self.memo_links = memo_links
        self.wayhint = wayhint
        self.l0_size = l0_size

    # -- per-event energies -------------------------------------------------
    @property
    def tag_way_pj(self) -> float:
        """Searching ONE way: precharge + compare over the full tag width."""
        scale = self.params.size_scale(
            self.geometry.size_bytes, self.params.tag_size_exponent
        )
        return self.params.cam_pj_per_way_bit * self.geometry.tag_bits * scale

    @property
    def full_search_pj(self) -> float:
        """Searching every way of one set."""
        return self.tag_way_pj * self.geometry.ways

    @property
    def data_read_pj(self) -> float:
        """Reading one instruction word from one way's data array."""
        base = self.params.data_read_pj * self.params.size_scale(
            self.geometry.size_bytes, self.params.data_size_exponent
        )
        if self.memo_links:
            base *= 1.0 + self.params.link_data_overhead
        return base

    @property
    def line_fill_pj(self) -> float:
        """Writing one fetched line into the data array."""
        bits = self.geometry.line_size * 8
        if self.memo_links:
            bits *= 1.0 + self.params.link_fill_overhead
        return self.params.fill_pj_per_bit * bits

    @property
    def memory_line_pj(self) -> float:
        """Fetching one line from off-chip memory."""
        return self.params.memory_pj_per_bit * self.geometry.line_size * 8

    @property
    def l0_fill_pj(self) -> float:
        return self.params.l0_fill_pj_per_bit * self.geometry.line_size * 8

    # -- whole-run pricing ----------------------------------------------------
    def energy(self, counters: FetchCounters) -> EnergyBreakdown:
        """Price a run's counters into an :class:`EnergyBreakdown`."""
        params = self.params

        tag_pj = counters.ways_precharged * self.tag_way_pj
        tag_pj += counters.single_way_searches * params.way_mux_pj

        cache_fetches = counters.fetches - counters.spm_accesses
        if self.organisation == "cam":
            # Only the matched way's data is ever read.
            data_pj = cache_fetches * self.data_read_pj
        else:
            # RAM organisation: a full access reads every way's data in
            # parallel; single-way and same-line accesses read one way.
            full_fetch_reads = counters.full_searches
            single_reads = (
                cache_fetches
                + counters.second_accesses
                - counters.full_searches
            )
            data_pj = (
                full_fetch_reads * self.geometry.ways + single_reads
            ) * self.data_read_pj

        fill_pj = counters.fills * self.line_fill_pj
        link_pj = counters.link_writes * params.link_write_pj
        l0_pj = (
            counters.l0_accesses * params.l0_read_pj
            + counters.l0_misses * self.l0_fill_pj
        )
        spm_pj = counters.spm_accesses * params.spm_read_pj
        hint_pj = counters.line_events * params.wayhint_pj if self.wayhint else 0.0
        itlb_pj = (
            counters.itlb_accesses * params.itlb_search_pj
            + counters.itlb_misses * params.itlb_fill_pj
        )
        memory_pj = counters.fills * self.memory_line_pj

        return EnergyBreakdown(
            tag_pj=tag_pj,
            data_pj=data_pj,
            fill_pj=fill_pj,
            link_pj=link_pj,
            l0_pj=l0_pj,
            spm_pj=spm_pj,
            hint_pj=hint_pj,
            itlb_pj=itlb_pj,
            memory_pj=memory_pj,
        )
