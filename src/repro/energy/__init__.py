"""Analytic energy models: pricing the activity the schemes counted.

The split mirrors the paper's toolchain: the cache model plays CACTI's role
(per-access energies derived from geometry), the processor model plays
XTREM's (whole-processor energy and the energy-delay product).  All values
are in picojoules; REFERENCE constants are calibrated so the baseline
32KB/32-way XScale-like configuration spends roughly a quarter of processor
energy in the instruction cache, matching the paper's StrongARM motivation.
"""

from repro.energy.params import EnergyParams
from repro.energy.cache_model import CacheEnergyModel, EnergyBreakdown
from repro.energy.processor import ProcessorEnergyModel, ProcessorReport
from repro.energy.leakage import DrowsyModel, DrowsyStats, LeakageParams

__all__ = [
    "EnergyParams",
    "CacheEnergyModel",
    "EnergyBreakdown",
    "ProcessorEnergyModel",
    "ProcessorReport",
    "DrowsyModel",
    "DrowsyStats",
    "LeakageParams",
]
