"""Whole-processor energy and the energy-delay product (XTREM's role).

Processor energy = fetch-path energy (from the cache model) + a calibrated
rest-of-core component with a per-instruction activity term and a per-cycle
term (clock tree, leakage, stall power).  The per-cycle term makes stalls —
cache misses, way-hint second accesses — cost energy as well as time.

The paper's metrics are *normalised*: every result divides a scheme's value
by the baseline's on the same benchmark and machine.  ``normalised_*``
helpers implement exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.access import FetchCounters
from repro.energy.cache_model import EnergyBreakdown
from repro.energy.params import EnergyParams
from repro.errors import EnergyModelError

__all__ = ["ProcessorEnergyModel", "ProcessorReport"]


@dataclass(frozen=True)
class ProcessorReport:
    """Energy/timing summary of one simulated run."""

    instructions: int
    cycles: int
    breakdown: EnergyBreakdown
    core_pj: float

    @property
    def icache_pj(self) -> float:
        return self.breakdown.icache_pj

    @property
    def processor_pj(self) -> float:
        """Total processor energy: fetch path + rest of core."""
        return self.breakdown.fetch_path_pj + self.core_pj

    @property
    def icache_fraction(self) -> float:
        """Share of processor energy spent in the instruction cache macro."""
        total = self.processor_pj
        return self.breakdown.icache_pj / total if total else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    # -- normalisation against a baseline run -------------------------------
    def normalised_icache_energy(self, baseline: "ProcessorReport") -> float:
        if baseline.icache_pj <= 0:
            raise EnergyModelError("baseline instruction cache energy is zero")
        return self.icache_pj / baseline.icache_pj

    def normalised_delay(self, baseline: "ProcessorReport") -> float:
        if baseline.cycles <= 0:
            raise EnergyModelError("baseline cycle count is zero")
        return self.cycles / baseline.cycles

    def ed_product(self, baseline: "ProcessorReport") -> float:
        """Normalised energy-delay product (processor energy x run time)."""
        if baseline.processor_pj <= 0 or baseline.cycles <= 0:
            raise EnergyModelError("baseline energy/delay is zero")
        energy_ratio = self.processor_pj / baseline.processor_pj
        delay_ratio = self.cycles / baseline.cycles
        return energy_ratio * delay_ratio


class ProcessorEnergyModel:
    """Adds the rest-of-core component on top of a cache breakdown.

    ``mem_fraction`` is the workload's dynamic share of load/store
    instructions: each memory operation adds D-cache/address-path energy on
    top of the flat per-instruction cost, so register-resident kernels give
    the I-cache a larger share of total processor energy.
    """

    def __init__(self, params: EnergyParams = EnergyParams()):
        self.params = params

    def core_energy_pj(
        self, instructions: int, cycles: int, mem_fraction: float = 0.25
    ) -> float:
        if not 0.0 <= mem_fraction <= 1.0:
            raise EnergyModelError(
                f"mem_fraction must be in [0, 1], got {mem_fraction}"
            )
        per_instruction = (
            self.params.core_pj_per_instruction
            + mem_fraction * self.params.mem_op_extra_pj
        )
        return instructions * per_instruction + cycles * self.params.core_pj_per_cycle

    def report(
        self,
        counters: FetchCounters,
        breakdown: EnergyBreakdown,
        cycles: int,
        mem_fraction: float = 0.25,
    ) -> ProcessorReport:
        return ProcessorReport(
            instructions=counters.fetches,
            cycles=cycles,
            breakdown=breakdown,
            core_pj=self.core_energy_pj(counters.fetches, cycles, mem_fraction),
        )
