"""Deterministic random-number helpers.

Every stochastic component in the library (synthetic CFG generation, branch
behaviour, input models) derives its randomness from a *named* seed so that
experiments are reproducible run-to-run and machine-to-machine.  Python's
built-in ``hash`` is salted per process, so we hash names with a fixed FNV-1a
instead.
"""

from __future__ import annotations

import random
from typing import Union

__all__ = ["stable_seed", "make_rng"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def stable_seed(*parts: Union[str, int]) -> int:
    """Derive a 64-bit seed from a sequence of strings/ints, stably.

    The same ``parts`` always produce the same seed, across processes and
    Python versions.  Used to key benchmark generation off benchmark names
    and input labels.
    """
    if not parts:
        raise ValueError("stable_seed requires at least one part")
    acc = _FNV_OFFSET
    for part in parts:
        data = str(part).encode("utf-8") + b"\x1f"
        for byte in data:
            acc ^= byte
            acc = (acc * _FNV_PRIME) & _MASK64
    return acc


def make_rng(*parts: Union[str, int]) -> random.Random:
    """Return a ``random.Random`` seeded stably from ``parts``."""
    return random.Random(stable_seed(*parts))
