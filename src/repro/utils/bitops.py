"""Bit-manipulation helpers used by the ISA encoder and cache models.

All helpers operate on non-negative Python integers and are deliberately
explicit rather than clever: the cache address-slicing code built on top of
them is the part of the system most likely to hide an off-by-one, so these
primitives validate their inputs aggressively.
"""

from __future__ import annotations

from repro.errors import CacheConfigError

__all__ = [
    "is_power_of_two",
    "log2_exact",
    "mask",
    "bit_field",
    "align_down",
    "align_up",
]


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int, what: str = "value") -> int:
    """Return ``log2(value)`` for an exact power of two.

    Raises :class:`CacheConfigError` naming ``what`` otherwise, because the
    dominant caller is cache-geometry validation.
    """
    if not is_power_of_two(value):
        raise CacheConfigError(f"{what} must be a power of two, got {value!r}")
    return value.bit_length() - 1


def mask(nbits: int) -> int:
    """Return an integer with the low ``nbits`` bits set."""
    if nbits < 0:
        raise ValueError(f"bit count must be non-negative, got {nbits}")
    return (1 << nbits) - 1


def bit_field(value: int, low: int, nbits: int) -> int:
    """Extract ``nbits`` bits of ``value`` starting at bit ``low``."""
    if low < 0:
        raise ValueError(f"low bit index must be non-negative, got {low}")
    return (value >> low) & mask(nbits)


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)
