"""Small statistics helpers used by the experiment harness and reports."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["arithmetic_mean", "geometric_mean", "weighted_mean"]


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain mean; raises ``ValueError`` on an empty input."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values.

    Normalised energies and ED products are ratios, for which the geometric
    mean is the statistically appropriate average; the paper plots arithmetic
    means of ratios, so the harness exposes both.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean; weights must be non-negative, not all zero."""
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    if not values:
        raise ValueError("weighted mean of empty sequence")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    total = float(sum(weights))
    if total == 0.0:
        raise ValueError("weights must not all be zero")
    return sum(v * w for v, w in zip(values, weights)) / total
