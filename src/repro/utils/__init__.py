"""Shared low-level helpers: bit manipulation, seeded RNG, statistics."""

from repro.utils.bitops import (
    align_down,
    align_up,
    bit_field,
    is_power_of_two,
    log2_exact,
    mask,
)
from repro.utils.rng import stable_seed, make_rng
from repro.utils.stats import geometric_mean, arithmetic_mean, weighted_mean

__all__ = [
    "align_down",
    "align_up",
    "bit_field",
    "is_power_of_two",
    "log2_exact",
    "mask",
    "stable_seed",
    "make_rng",
    "geometric_mean",
    "arithmetic_mean",
    "weighted_mean",
]
