"""Profiling: execution counts that drive the way-placement pass.

The paper profiles each benchmark on its *small* input and evaluates on the
*large* one; :func:`~repro.profiling.profiler.profile_program` performs the
profiling walk and returns a :class:`~repro.profiling.profile_data.ProfileData`
with block and edge execution counts.
"""

from repro.profiling.profile_data import ProfileData
from repro.profiling.profiler import (
    profile_program,
    profile_block_trace,
    dynamic_memory_fraction,
)

__all__ = [
    "ProfileData",
    "profile_program",
    "profile_block_trace",
    "dynamic_memory_fraction",
]
