"""Profiling runs: walk a program on a training input and count executions."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.profiling.profile_data import ProfileData
from repro.program.program import Program
from repro.trace.branch_model import BranchModelMap
from repro.trace.executor import BlockTrace, CfgWalker

__all__ = ["profile_program", "profile_block_trace", "dynamic_memory_fraction"]


def profile_block_trace(
    program: Program, trace: BlockTrace, input_name: str
) -> ProfileData:
    """Reduce an existing block trace to a :class:`ProfileData`."""
    max_uid = max(block.uid for block in program.blocks())
    counts = trace.block_counts(max_uid + 1)
    block_counts: Dict[int, int] = {
        block.uid: int(counts[block.uid]) for block in program.blocks()
    }

    edge_counts: Dict[Tuple[int, int], int] = {}
    uids = trace.uids
    if uids.shape[0] > 1:
        pairs = np.stack([uids[:-1], uids[1:]], axis=1)
        unique_pairs, pair_counts = np.unique(pairs, axis=0, return_counts=True)
        edge_counts = {
            (int(src), int(dst)): int(count)
            for (src, dst), count in zip(unique_pairs.tolist(), pair_counts.tolist())
        }

    return ProfileData(
        program_name=program.name,
        input_name=input_name,
        block_counts=block_counts,
        edge_counts=edge_counts,
        num_instructions=trace.num_instructions,
    )


def dynamic_memory_fraction(program: Program, trace: BlockTrace) -> float:
    """Dynamic share of load/store instructions in an executed trace.

    Feeds the processor energy model's per-memory-op activity term.
    """
    max_uid = max(block.uid for block in program.blocks())
    counts = trace.block_counts(max_uid + 1)
    mem_ops = 0
    for block in program.blocks():
        executed = int(counts[block.uid])
        if executed:
            per_visit = sum(1 for i in block.instructions if i.is_memory_access)
            mem_ops += executed * per_visit
    if trace.num_instructions == 0:
        return 0.0
    return mem_ops / trace.num_instructions


def profile_program(
    program: Program,
    branch_models: BranchModelMap,
    max_instructions: int,
    input_name: str = "train",
    seed: int = 0,
) -> ProfileData:
    """Run the profiling walk the paper performs with the small input set."""
    walker = CfgWalker(program, branch_models, seed=seed)
    trace = walker.walk(max_instructions)
    return profile_block_trace(program, trace, input_name)
