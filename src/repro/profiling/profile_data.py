"""Profile containers: block and edge execution counts with JSON persistence."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Tuple, Union

from repro.errors import ProfileError

__all__ = ["ProfileData"]


@dataclass(frozen=True)
class ProfileData:
    """Execution counts gathered from a profiling run.

    ``block_counts`` maps block uid -> number of executions;
    ``edge_counts`` maps (src uid, dst uid) -> number of traversals;
    ``num_instructions`` is the total dynamic instruction count of the run.
    """

    program_name: str
    input_name: str
    block_counts: Dict[int, int]
    edge_counts: Dict[Tuple[int, int], int] = field(default_factory=dict)
    num_instructions: int = 0

    def count_of(self, uid: int) -> int:
        return self.block_counts.get(uid, 0)

    def hottest_blocks(self, limit: int = 10) -> Tuple[Tuple[int, int], ...]:
        """The ``limit`` most-executed (uid, count) pairs, hottest first."""
        ranked = sorted(self.block_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return tuple(ranked[:limit])

    @property
    def coverage(self) -> float:
        """Fraction of profiled blocks executed at least once."""
        if not self.block_counts:
            return 0.0
        executed = sum(1 for count in self.block_counts.values() if count > 0)
        return executed / len(self.block_counts)

    # ------------------------------------------------------------------
    # Persistence (profiles are the only artefact the compiler pass needs,
    # so they get a stable on-disk format).
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        payload = {
            "program": self.program_name,
            "input": self.input_name,
            "num_instructions": self.num_instructions,
            "block_counts": {str(uid): count for uid, count in self.block_counts.items()},
            "edge_counts": {
                f"{src}->{dst}": count
                for (src, dst), count in self.edge_counts.items()
            },
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ProfileData":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ProfileError(f"cannot load profile from {path}: {exc}") from exc
        try:
            edge_counts: Dict[Tuple[int, int], int] = {}
            for key, count in payload.get("edge_counts", {}).items():
                src, _, dst = key.partition("->")
                edge_counts[(int(src), int(dst))] = int(count)
            return cls(
                program_name=payload["program"],
                input_name=payload["input"],
                block_counts={
                    int(uid): int(count)
                    for uid, count in payload["block_counts"].items()
                },
                edge_counts=edge_counts,
                num_instructions=int(payload.get("num_instructions", 0)),
            )
        except (KeyError, ValueError) as exc:
            raise ProfileError(f"malformed profile file {path}: {exc}") from exc
