"""Supervised grid execution: retry, timeout, crash isolation, fallback.

This is the engine room behind :func:`repro.engine.grid.run_grid`.  Where
the old fan-out handed hundreds of cells to a bare ``ProcessPoolExecutor``
— one crash, hang, or disk fault aborting the whole grid and discarding
every finished report — the supervisor walks a recovery ladder and keeps
every success:

1. **Per-cell retry** with exponential backoff and deterministic jitter
   (:meth:`~repro.resilience.policy.ResilienceConfig.backoff_delay`);
2. **Engine fallback**: a cell whose vectorized kernel raises, or whose
   sanitizer fires, re-runs on the pure-Python reference schemes (they are
   bit-identical, so the numbers cannot change);
3. **Fresh worker**: a crashed or timed-out worker process's remaining
   cells are requeued on a newly spawned worker;
4. **In-process fallback**: a chunk that keeps dying in workers runs in the
   parent itself before the supervisor gives up.

Completed reports are always adopted into the runner's memo and
checkpointed to the grid's :class:`~repro.resilience.journal.ResumeJournal`
*before* any failure surfaces, so a partial grid is never wasted work.
Every incident is recorded as a
:class:`~repro.resilience.policy.FailureReport`; unrecovered failures raise
:class:`~repro.errors.CellFailure` with those reports attached.

*Where* the parallel portion runs is delegated to an execution backend
(:mod:`repro.resilience.backends`): the local benchmark-chunked worker
pool implemented by :func:`_run_parallel` here, or the lease/heartbeat/
work-stealing sharded backend of :mod:`repro.resilience.sharded`.  Both
stream completed cells through the same adoption path and return their
unfinished chunks to the in-process rung, so the recovery ladder is
backend-independent.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from dataclasses import dataclass
from multiprocessing.connection import Connection
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import CellFailure, ResilienceError, RetriesExhausted, SanitizerError
from repro.resilience import chaos
from repro.resilience.journal import (
    ResumeJournal,
    cell_content_key,
    grid_digest,
    report_from_dict,
)
from repro.resilience.policy import (
    FailureReport,
    FallbackPolicy,
    ResilienceConfig,
    cause_chain,
    is_retryable,
    render_failures,
)
from repro.sim.report import SimulationReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.grid import GridCell

__all__ = ["GridSummary", "run_cell", "run_cells", "supervise_grid"]

#: Seconds between scheduler polls of the active worker set.
_POLL_INTERVAL_S = 0.01
#: Grace period for draining a just-died worker's result pipe.
_DRAIN_TIMEOUT_S = 0.2


@dataclass(frozen=True)
class GridSummary:
    """What one supervised grid actually did, by cell content key."""

    total: int
    memoised: Tuple[str, ...]
    resumed: Tuple[str, ...]
    executed: Tuple[str, ...]
    failed: Tuple[str, ...]
    failures: Tuple[FailureReport, ...]
    #: Planner decisions: batch families formed, the cells they covered,
    #: cells collapsed by static pruning certificates, and one compact
    #: descriptor per certificate applied.  Counts include retried chunk
    #: attempts (they describe planner activity, not distinct cells).
    families: int = 0
    family_cells: int = 0
    pruned: int = 0
    prune_certificates: Tuple[str, ...] = ()
    #: Which execution backend ran the parallel portion (see
    #: :mod:`repro.resilience.backends`), the shards it planned, and how
    #: many duplicate deliveries its first-wins dedup dropped.
    backend: str = "local"
    shards: int = 0
    duplicate_results: int = 0
    #: Shared-memory trace plane (see :mod:`repro.engine.plane`): arena
    #: attachments made by workers, attachments that degraded to the
    #: per-worker load path, and the largest memory growth of any worker
    #: process over its at-spawn baseline (KB; proportional set size on
    #: Linux, so shared trace pages are billed fractionally) — the
    #: per-worker data-plane footprint.
    plane_attached: int = 0
    plane_degraded: int = 0
    peak_worker_rss_kb: int = 0


def _new_stats() -> Dict[str, Any]:
    """Mutable execution-stats accumulator threaded through :func:`run_cells`."""
    return {
        "families": 0,
        "family_cells": 0,
        "pruned": 0,
        "certificates": [],
        "shards": 0,
        "duplicates": 0,
        "plane_attached": 0,
        "plane_degraded": 0,
        "peak_rss_kb": 0,
        "store_degraded": None,
    }


def _peak_rss_kb() -> int:
    """This process's memory footprint in KB (0 where unavailable).

    Workers sample this at entry and at exit; the difference — the growth
    attributable to the worker's own loads and replay — is what the grid
    summary aggregates, cancelling whatever the parent had resident at
    fork time.  On Linux the sample is Pss from ``smaps_rollup``, which
    attributes pages shared between siblings (the trace plane's segments,
    mmap'd v2 store entries) fractionally — plain RSS bills a shared page
    at full price in every attached worker, hiding the sharing entirely.
    Elsewhere it falls back to peak RSS via ``ru_maxrss``.
    """
    try:
        with open("/proc/self/smaps_rollup", "rb") as rollup:
            for line in rollup:
                if line.startswith(b"Pss:"):
                    return int(line.split()[1])
    except Exception:
        pass
    try:
        import resource

        peak = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:
        return 0
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, KB on Linux
        peak //= 1024
    return peak


def _merge_stats(into: Dict[str, Any], other: Dict[str, Any]) -> None:
    into["families"] += other.get("families", 0)
    into["family_cells"] += other.get("family_cells", 0)
    into["pruned"] += other.get("pruned", 0)
    into["certificates"].extend(other.get("certificates", []))
    into["shards"] = into.get("shards", 0) + other.get("shards", 0)
    into["duplicates"] = into.get("duplicates", 0) + other.get("duplicates", 0)
    into["plane_attached"] = into.get("plane_attached", 0) + other.get(
        "plane_attached", 0
    )
    into["plane_degraded"] = into.get("plane_degraded", 0) + other.get(
        "plane_degraded", 0
    )
    into["peak_rss_kb"] = max(
        into.get("peak_rss_kb", 0), other.get("peak_rss_kb", 0)
    )
    degraded = other.get("store_degraded")
    if degraded:
        # Workers suppress their own copy of the cache-degradation warning
        # (see store.suppress_write_warnings); the parent relays exactly
        # one on their behalf, deduplicated by the store module's global.
        into["store_degraded"] = degraded
        from repro.engine import store as store_module

        store_module.warn_write_failure(
            degraded, "cache writes failed in a worker process"
        )


# ---------------------------------------------------------------------------
# Per-cell supervision (runs in the parent and inside every worker)
# ---------------------------------------------------------------------------
def run_cell(
    runner: Any,
    cell: "GridCell",
    config: ResilienceConfig,
    failures: List[FailureReport],
    site: str = "cell",
) -> SimulationReport:
    """Simulate one cell under the retry/backoff/engine-fallback ladder.

    Raises :class:`~repro.errors.RetriesExhausted` (with the last
    underlying error chained) once every rung is spent; appends a
    :class:`FailureReport` for both recovered and fatal incidents.
    """
    token = f"{cell.benchmark}:{cell.scheme}:wpa{cell.wpa_size}"
    causes: List[str] = []
    attempts = 0
    downgraded = False
    while True:
        attempts += 1
        previous_engine = runner.engine
        if downgraded:
            runner.engine = "reference"
        try:
            chaos.chaos_point("cell", token)
            report = runner.report(**cell.report_kwargs())
        except Exception as error:
            causes.extend(cause_chain(error))
            fallback_open = (
                config.fallback is FallbackPolicy.REFERENCE
                and not downgraded
                and previous_engine != "reference"
            )
            if isinstance(error, SanitizerError) and fallback_open:
                downgraded = True
                continue
            if is_retryable(error) and attempts <= config.retries:
                time.sleep(config.backoff_delay(attempts - 1, token))
                continue
            if is_retryable(error) and fallback_open:
                downgraded = True
                continue
            failures.append(
                FailureReport(
                    site=site,
                    benchmark=cell.benchmark,
                    cell=token,
                    attempts=attempts,
                    causes=tuple(causes),
                    recovery="none",
                    recovered=False,
                )
            )
            raise RetriesExhausted(
                f"cell {token} failed after {attempts} attempt(s)",
                attempts=attempts,
            ) from error
        else:
            if causes:
                failures.append(
                    FailureReport(
                        site=site,
                        benchmark=cell.benchmark,
                        cell=token,
                        attempts=attempts,
                        causes=tuple(causes),
                        recovery="engine-fallback" if downgraded else "retry",
                        recovered=True,
                    )
                )
            return report
        finally:
            runner.engine = previous_engine


# ---------------------------------------------------------------------------
# Chunk execution: batch families first, then the per-cell ladder
# ---------------------------------------------------------------------------
def _family_engine(runner: Any) -> Optional[str]:
    """The family tier this chunk should plan for, or ``None`` for per-cell.

    ``"batch"`` or ``"differential"`` when the runner's engine resolves to
    that tier and the runner can actually execute a family.  An invalid
    engine name returns ``None`` so the per-cell path surfaces the proper
    error.
    """
    if not hasattr(runner, "report_family"):
        return None
    try:
        from repro.sim.simulator import resolve_engine

        engine = resolve_engine(getattr(runner, "engine", None))
    except Exception:
        return None
    return engine if engine in ("batch", "differential") else None


def run_cells(
    runner: Any,
    cells: Sequence["GridCell"],
    config: ResilienceConfig,
    failures: List[FailureReport],
    emit: Callable[[int, SimulationReport], None],
    fail: Callable[[int, BaseException], None],
    stats: Optional[Dict[str, Any]] = None,
) -> None:
    """Simulate a chunk of cells, batching trace-sharing families.

    ``emit(index, report)`` is called for every completed cell and
    ``fail(index, error)`` for every cell that exhausted the ladder, both
    with indices into ``cells``.  Under the ``batch`` and ``differential``
    engines, cells are first coalesced into families
    (:func:`repro.engine.grid.plan_families`) and each family replays with
    one trace traversal; a family that fails for *any* reason — sanitizer
    trip, kernel bug, injected fault — records a recovered
    :class:`FailureReport` and degrades one rung: a pruned family re-runs
    unpruned, a differential family re-runs as a plain batch family, and a
    batch family's members fall to the per-cell retry/backoff/engine-
    fallback ladder of :func:`run_cell`.  Batching never weakens
    supervision.

    When the runner was built with ``prune=True``, each family first runs
    through :meth:`ExperimentRunner.report_family_pruned`, which collapses
    statically outcome-equivalent cells to one representative under a
    certificate (see :mod:`repro.analysis.absint.prune`).  ``stats``, when
    given, accumulates the planner decisions (families, cells covered,
    cells pruned, certificates) for :class:`GridSummary`.
    """
    singles = list(range(len(cells)))
    family_engine = _family_engine(runner)
    if len(cells) > 1 and family_engine is not None:
        from repro.engine.grid import plan_families

        families, singles = plan_families(
            cells, runner._resolve_layout_policy, engine=family_engine
        )
        use_prune = bool(getattr(runner, "prune", False)) and hasattr(
            runner, "report_family_pruned"
        )
        for family in families:
            members = [cells[index] for index in family.indices]
            token = (
                f"{family.benchmark}:{family.layout_policy.value}"
                f":{len(members)}-cell family"
            )
            if stats is not None:
                stats["families"] += 1
                stats["family_cells"] += len(members)
            reports: Optional[List[SimulationReport]] = None
            if use_prune:
                try:
                    reports, certificate = runner.report_family_pruned(
                        members, engine=family.engine
                    )
                except Exception as error:
                    failures.append(
                        FailureReport(
                            site="prune",
                            benchmark=family.benchmark,
                            cell=token,
                            attempts=1,
                            causes=tuple(cause_chain(error)),
                            recovery="unpruned",
                            recovered=True,
                        )
                    )
                else:
                    if certificate is not None and stats is not None:
                        stats["pruned"] += certificate.pruned
                        stats["certificates"].append(
                            f"{family.benchmark}:{family.layout_policy.value}:"
                            f"{certificate.pruned}/{certificate.total} pruned"
                        )
            if reports is None and family.engine == "differential":
                try:
                    reports = runner.report_family(members, engine="differential")
                except Exception as error:
                    failures.append(
                        FailureReport(
                            site="differential",
                            benchmark=family.benchmark,
                            cell=token,
                            attempts=1,
                            causes=tuple(cause_chain(error)),
                            recovery="batch",
                            recovered=True,
                        )
                    )
            if reports is None:
                try:
                    reports = runner.report_family(members, engine="batch")
                except Exception as error:
                    failures.append(
                        FailureReport(
                            site="family",
                            benchmark=family.benchmark,
                            cell=token,
                            attempts=1,
                            causes=tuple(cause_chain(error)),
                            recovery="per-cell",
                            recovered=True,
                        )
                    )
                    singles.extend(family.indices)
                    continue
            for index, report in zip(family.indices, reports):
                emit(index, report)
        singles.sort()
    for index in singles:
        try:
            emit(index, run_cell(runner, cells[index], config, failures))
        except RetriesExhausted as error:
            fail(index, error)


# ---------------------------------------------------------------------------
# Worker processes (one per benchmark-chunk attempt)
# ---------------------------------------------------------------------------
def _chunk_worker_main(
    spec: Dict[str, Any],
    config: ResilienceConfig,
    chaos_config: Optional[chaos.ChaosConfig],
    plane_handles: Optional[Dict[str, Any]],
    benchmark: str,
    attempt: int,
    cells: Tuple["GridCell", ...],
    conn: Connection,
) -> None:
    """Worker entry point: simulate one benchmark chunk, ship results back.

    Sends ``(status, results, failures, error, stats)`` where ``results``
    maps chunk indices to finished reports — partial on failure, so the
    parent adopts whatever completed before anything went wrong — and
    ``stats`` carries the chunk's planner decisions (see
    :func:`_new_stats`).
    """
    rss_baseline = _peak_rss_kb()
    results: List[Tuple[int, SimulationReport]] = []
    failures: List[FailureReport] = []
    stats = _new_stats()
    error: Optional[str] = None
    try:
        if chaos_config is not None:
            chaos.install(chaos_config)
        from repro.engine import store as store_module

        # The parent relays one degradation warning for all workers (see
        # _merge_stats); a per-process copy from every worker is noise.
        store_module.suppress_write_warnings()
        chaos.chaos_point("worker", f"{benchmark}@{attempt}")
        from repro.experiments.runner import ExperimentRunner

        runner = ExperimentRunner(**spec)
        if plane_handles:
            from repro.engine.plane import PlaneClient

            runner.plane = PlaneClient(plane_handles)

        def emit(index: int, report: SimulationReport) -> None:
            results.append((index, report))

        def fail(index: int, exc: BaseException) -> None:
            nonlocal error
            error = f"{type(exc).__name__}: {exc}"

        run_cells(runner, cells, config, failures, emit, fail, stats)
        store = getattr(runner, "store", None)
        if store is not None and getattr(store, "writes_disabled", False):
            stats["store_degraded"] = str(store.root)
        plane = getattr(runner, "plane", None)
        if plane is not None:
            stats["plane_attached"] = int(getattr(plane, "attached", 0))
            stats["plane_degraded"] = int(getattr(plane, "degraded", 0))
        stats["peak_rss_kb"] = max(0, _peak_rss_kb() - rss_baseline)
        conn.send(("done", results, failures, error, stats))
    except BaseException as exc:  # noqa: B036 - report, then die
        try:
            conn.send(
                ("fatal", results, failures, f"{type(exc).__name__}: {exc}", stats)
            )
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def _mp_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


@dataclass
class _Chunk:
    """One benchmark's remaining cells plus its supervision state."""

    benchmark: str
    cells: List["GridCell"]
    attempts: int = 0
    ready_at: float = 0.0

    def __post_init__(self) -> None:
        self.causes: List[str] = []


@dataclass
class _Active:
    chunk: _Chunk
    process: Any
    conn: Connection
    deadline: Optional[float]


def _stop_worker(entry: _Active) -> None:
    process = entry.process
    try:
        process.terminate()
        process.join(2.0)
        if process.is_alive():
            process.kill()
            process.join(5.0)
    finally:
        try:
            entry.conn.close()
        except Exception:
            pass


Adopt = Callable[["GridCell", SimulationReport], None]


def _run_parallel(
    runner: Any,
    chunks: List[_Chunk],
    jobs: int,
    config: ResilienceConfig,
    failures: List[FailureReport],
    adopt: Adopt,
    stats: Dict[str, Any],
) -> List[_Chunk]:
    """Fan chunks across supervised worker processes.

    Returns the chunks that exhausted their worker attempts and must fall
    back to in-process execution in the parent.
    """
    context = _mp_context()
    spec = runner.spawn_spec()
    chaos_config = chaos.current()
    plane_handles = getattr(runner, "plane_handles", None)
    pending = list(chunks)
    active: List[_Active] = []
    exhausted: List[_Chunk] = []

    def launch(chunk: _Chunk) -> None:
        chunk.attempts += 1
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_chunk_worker_main,
            args=(
                spec,
                config,
                chaos_config,
                plane_handles,
                chunk.benchmark,
                chunk.attempts,
                tuple(chunk.cells),
                child_conn,
            ),
        )
        process.daemon = True
        process.start()
        child_conn.close()
        deadline = (
            time.monotonic() + config.timeout_s
            if config.timeout_s is not None
            else None
        )
        active.append(_Active(chunk, process, parent_conn, deadline))

    def settle(chunk: _Chunk, cause: str) -> None:
        """A worker attempt failed; requeue, or hand over to the parent."""
        chunk.causes.append(cause)
        if chunk.attempts <= config.retries:
            chunk.ready_at = time.monotonic() + config.backoff_delay(
                chunk.attempts - 1, chunk.benchmark
            )
            pending.append(chunk)
        else:
            exhausted.append(chunk)

    def absorb(entry: _Active, message: Tuple[Any, ...]) -> None:
        status, results, worker_failures, error, worker_stats = message
        failures.extend(worker_failures)
        _merge_stats(stats, worker_stats)
        chunk = entry.chunk
        finished = set()
        for index, report in results:
            adopt(chunk.cells[index], report)
            finished.add(index)
        remaining = [
            cell for index, cell in enumerate(chunk.cells) if index not in finished
        ]
        if not remaining and error is None and status == "done":
            if chunk.causes:
                failures.append(
                    FailureReport(
                        site="worker",
                        benchmark=chunk.benchmark,
                        cell=f"{chunk.benchmark} chunk",
                        attempts=chunk.attempts,
                        causes=tuple(chunk.causes),
                        recovery="fresh-worker",
                        recovered=True,
                    )
                )
            return
        chunk.cells = remaining if remaining else list(chunk.cells)
        settle(chunk, error or f"worker finished without results ({status})")

    while pending or active:
        now = time.monotonic()
        while len(active) < max(1, jobs):
            index = next(
                (i for i, chunk in enumerate(pending) if chunk.ready_at <= now),
                None,
            )
            if index is None:
                break
            launch(pending.pop(index))
        if not active:
            if pending:
                time.sleep(_POLL_INTERVAL_S)
            continue
        progressed = False
        still_active: List[_Active] = []
        for entry in active:
            message: Optional[Tuple[Any, ...]] = None
            if entry.conn.poll():
                try:
                    message = entry.conn.recv()
                except (EOFError, OSError):
                    message = None
            if message is not None:
                entry.process.join(5.0)
                try:
                    entry.conn.close()
                except Exception:
                    pass
                absorb(entry, message)
                progressed = True
            elif not entry.process.is_alive():
                # Drain the pipe once more: the child may have sent its
                # results in the instant before exiting.
                if entry.conn.poll(_DRAIN_TIMEOUT_S):
                    try:
                        message = entry.conn.recv()
                    except (EOFError, OSError):
                        message = None
                entry.process.join(5.0)
                try:
                    entry.conn.close()
                except Exception:
                    pass
                if message is not None:
                    absorb(entry, message)
                else:
                    settle(
                        entry.chunk,
                        f"worker crashed (exit code {entry.process.exitcode})",
                    )
                progressed = True
            elif entry.deadline is not None and now >= entry.deadline:
                _stop_worker(entry)
                settle(
                    entry.chunk,
                    f"worker timed out after {config.timeout_s}s",
                )
                progressed = True
            else:
                still_active.append(entry)
        active = still_active
        if not progressed:
            time.sleep(_POLL_INTERVAL_S)
    return exhausted


# ---------------------------------------------------------------------------
# The grid itself
# ---------------------------------------------------------------------------
def supervise_grid(
    runner: Any,
    cells: Sequence["GridCell"],
    jobs: int = 1,
    config: Optional[ResilienceConfig] = None,
) -> List[SimulationReport]:
    """Run a grid under supervision; returns reports in input order.

    See the module docstring for the recovery ladder.  The runner's memo
    is always left holding every report that completed, the run is
    checkpointed to a resume journal when a persistent cache directory is
    available, and the structured outcome lands on ``runner.last_grid`` /
    ``runner.last_failures``.
    """
    from repro.resilience.policy import DEFAULT_RESILIENCE

    cells = list(cells)
    jobs = max(1, int(jobs))
    config = (config or DEFAULT_RESILIENCE).validate()
    failures: List[FailureReport] = []
    stats = _new_stats()
    executed: Set[str] = set()
    failed: Set[str] = set()
    resumed: Set[str] = set()
    memoised: Set[str] = set()
    first_error: Optional[BaseException] = None

    # -- checkpoint journal -------------------------------------------------
    journal: Optional[ResumeJournal] = None
    store = getattr(runner, "store", None)
    if store is not None:
        key = grid_digest(
            runner.spawn_spec(), [cell_content_key(cell) for cell in cells]
        )
        journal = ResumeJournal.for_grid(store.root, key)
    elif config.resume:
        raise ResilienceError(
            "--resume needs a persistent cache directory to hold the grid "
            "journal; enable the trace cache or drop --resume"
        )
    if journal is not None and config.resume:
        completed = journal.load()
        for cell in cells:
            content = cell_content_key(cell)
            if content in completed and not runner.has_report(cell):
                runner.adopt_report(cell, report_from_dict(completed[content]))
                resumed.add(content)

    # -- figure out what still needs simulating -----------------------------
    groups: Dict[str, List["GridCell"]] = {}
    for cell in cells:
        content = cell_content_key(cell)
        if runner.has_report(cell):
            if content not in resumed:
                memoised.add(content)
            continue
        groups.setdefault(cell.benchmark, []).append(cell)

    def adopt(cell: "GridCell", report: SimulationReport) -> None:
        runner.adopt_report(cell, report)
        content = cell_content_key(cell)
        executed.add(content)
        if journal is not None:
            journal.record(content, report)

    def run_in_process(benchmark: str, group: List["GridCell"]) -> None:
        nonlocal first_error

        def emit(index: int, report: SimulationReport) -> None:
            adopt(group[index], report)

        def fail(index: int, error: BaseException) -> None:
            nonlocal first_error
            failed.add(cell_content_key(group[index]))
            if first_error is None:
                first_error = error

        run_cells(runner, group, config, failures, emit, fail, stats)
        if journal is not None:
            journal.flush()

    pending = {benchmark: group for benchmark, group in groups.items() if group}
    pending_cells = sum(len(group) for group in pending.values())
    # The local backend parallelizes across benchmark chunks, so one
    # benchmark gains nothing from workers; the sharded backend shards by
    # the planner key and can fan out any multi-cell grid.
    parallel = jobs > 1 and (
        len(pending) > 1 or (config.backend != "local" and pending_cells > 1)
    )
    if parallel:
        from repro.resilience.backends import resolve_backend

        backend = resolve_backend(config.backend)
        chunks = [
            _Chunk(benchmark, list(group)) for benchmark, group in pending.items()
        ]

        def adopt_and_flush(cell: "GridCell", report: SimulationReport) -> None:
            adopt(cell, report)
            if journal is not None:
                journal.flush()

        # Publish the pending cells' warm trace arrays into a shared-memory
        # arena so workers attach zero-copy instead of re-loading (see
        # repro.engine.plane).  Best effort: any failure just means workers
        # use their own load path, bit-identically.
        arena = None
        if hasattr(runner, "publish_plane"):
            try:
                from repro.engine import plane as plane_module

                if plane_module.plane_enabled():
                    arena = plane_module.TraceArena()
                    pending_all = [
                        cell for group in pending.values() for cell in group
                    ]
                    if runner.publish_plane(arena, pending_all) == 0:
                        arena.close()
                        arena = None
            except Exception:
                if arena is not None:
                    arena.close()
                arena = None
        try:
            runner.plane_handles = arena.handles() if arena is not None else None
            exhausted = backend.run(
                runner, chunks, jobs, config, failures, adopt_and_flush, stats, journal
            )
        finally:
            runner.plane_handles = None
            if arena is not None:
                arena.close()
        for chunk in exhausted:
            before = len(failed)
            run_in_process(chunk.benchmark, chunk.cells)
            failures.append(
                FailureReport(
                    site="worker",
                    benchmark=chunk.benchmark,
                    cell=f"{chunk.benchmark} chunk",
                    attempts=chunk.attempts,
                    causes=tuple(chunk.causes),
                    recovery="in-process" if len(failed) == before else "none",
                    recovered=len(failed) == before,
                )
            )
    else:
        for benchmark, group in pending.items():
            run_in_process(benchmark, group)

    # -- outcome ------------------------------------------------------------
    runner.last_failures = list(failures)
    runner.last_grid = GridSummary(
        total=len(cells),
        memoised=tuple(sorted(memoised)),
        resumed=tuple(sorted(resumed)),
        executed=tuple(sorted(executed)),
        failed=tuple(sorted(failed)),
        failures=tuple(failures),
        families=stats["families"],
        family_cells=stats["family_cells"],
        pruned=stats["pruned"],
        prune_certificates=tuple(stats["certificates"]),
        backend=config.backend,
        shards=stats["shards"],
        duplicate_results=stats["duplicates"],
        plane_attached=stats["plane_attached"],
        plane_degraded=stats["plane_degraded"],
        peak_worker_rss_kb=stats["peak_rss_kb"],
    )
    if failed:
        if journal is not None:
            journal.flush()
        print(render_failures(failures), file=sys.stderr)
        raise CellFailure(
            f"{len(failed)} grid cell(s) failed after retries; "
            f"{len(executed) + len(resumed) + len(memoised)} of {len(cells)} "
            f"cell(s) completed and were kept",
            failures=failures,
        ) from first_error
    if journal is not None:
        journal.discard()
    if failures:
        print(render_failures(failures), file=sys.stderr)
    return [runner.report(**cell.report_kwargs()) for cell in cells]
