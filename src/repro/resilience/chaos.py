"""Deterministic, seedable fault injection for the resilience subsystem.

Recovery code that is never exercised is recovery code that does not work.
This module turns the supervisor's failure modes into *test inputs*: a
:class:`ChaosConfig` (a seed plus an ordered tuple of :class:`ChaosRule`\\ s)
is installed process-wide, and instrumented **sites** across the pipeline
consult it:

=============  ==========================================================
site           where it fires
=============  ==========================================================
``store.load``   :class:`~repro.engine.store.TraceStore` reads
``store.save``   :class:`~repro.engine.store.TraceStore` writes
``store.discard``  deleting a corrupt :class:`TraceStore` entry
``worker``       a grid worker process's entry point (key ``bench@attempt``)
``kernel``       the vectorized fast path in ``Simulator.run_events``
``cell``         one supervised cell simulation (parent or worker)
``family``       a family-tier replay in ``ExperimentRunner.report_family``
``differential``  the delta-driven family tier specifically (fires before
                 ``family`` on the same replay, so each rung of the
                 differential → batch → per-cell ladder is addressable)
``prune``        applying a static sweep-pruning certificate in
                 ``ExperimentRunner.report_family_pruned`` (the topmost
                 ladder rung; recovery is unpruned family execution)
``shard``        a sharded-backend shard worker's entry point (key
                 ``shard_id@attempt``; see :mod:`repro.resilience.sharded`)
``lease``        a shard worker's heartbeat loop (fault ``heartbeat-loss``
                 silences the worker so its lease expires and the shard is
                 reassigned)
``steal``        granting a shard lease (fault ``duplicate`` forces an
                 immediate speculative duplicate of the shard, exercising
                 duplicate-delivery idempotence)
``transport``    the sharded backend's result-queue protocol (coordinator
                 receive and worker send; an injected fault degrades the
                 whole backend to :class:`LocalBackend`)
``plane.attach`` a grid worker attaching a shared-memory trace segment in
                 :class:`~repro.engine.plane.PlaneClient` (key
                 ``kind:store-key``; recovery is the per-worker store/
                 derive path, bit-identical)
=============  ==========================================================

Faults model the real failure surface: ``crash`` (the process dies with
``os._exit``), ``hang`` (sleeps until the supervisor's timeout kills it),
``raise`` (an :class:`InjectedFault`), ``enospc``/``eacces`` (environment
``OSError``\\ s), ``sanitizer`` (a mid-grid
:class:`~repro.errors.SanitizerError`), and ``truncate`` (a torn write:
the entry file is cut short before being published).  Two faults are
*advisory* rather than raising — ``heartbeat-loss`` (a worker keeps
computing but stops announcing itself) and ``duplicate`` (the coordinator
double-assigns a shard) — consumed by the sharded backend via
:func:`should_fire` instead of :func:`chaos_point`.

Determinism: a rule fires at most ``times`` times per process, and a
``probability < 1`` draw is seeded by ``(seed, rule, site, key, count)``
alone — never by wall clock or scheduling order — so a chaos run is exactly
reproducible from its seed.

The harness ships across process boundaries: the grid supervisor forwards
the active config to every worker it spawns, so injected faults follow the
work wherever it executes.
"""

from __future__ import annotations

import errno
import hashlib
import os
import random
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import ResilienceError, SanitizerError

__all__ = [
    "ChaosConfig",
    "ChaosRule",
    "InjectedFault",
    "active",
    "chaos_point",
    "corrupt_file",
    "current",
    "install",
    "should_fire",
    "uninstall",
]

_SITES = frozenset(
    {
        "store.load",
        "store.save",
        "store.discard",
        "worker",
        "kernel",
        "cell",
        "family",
        "differential",
        "prune",
        "shard",
        "lease",
        "steal",
        "transport",
        "plane.attach",
    }
)
_FAULTS = frozenset(
    {
        "crash",
        "hang",
        "raise",
        "enospc",
        "eacces",
        "sanitizer",
        "truncate",
        "heartbeat-loss",
        "duplicate",
    }
)

#: Exit code of a chaos-crashed process (recognisable in supervisor logs).
CRASH_EXIT_CODE = 86


class InjectedFault(RuntimeError):
    """A generic transient failure injected by a chaos rule."""


@dataclass(frozen=True)
class ChaosRule:
    """One injection: fire ``fault`` at ``site`` for keys containing ``match``.

    ``times`` bounds firings per process (``0`` disables the rule, negative
    means unlimited); ``probability`` gates each candidate firing with a
    deterministic seeded draw; ``delay_s`` is how long a ``hang`` sleeps.
    """

    site: str
    fault: str
    match: str = ""
    times: int = 1
    probability: float = 1.0
    delay_s: float = 30.0

    def validate(self) -> "ChaosRule":
        if self.site not in _SITES:
            raise ResilienceError(
                f"unknown chaos site {self.site!r}; choose from {sorted(_SITES)}"
            )
        if self.fault not in _FAULTS:
            raise ResilienceError(
                f"unknown chaos fault {self.fault!r}; choose from {sorted(_FAULTS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ResilienceError(
                f"chaos probability must be in [0, 1], got {self.probability}"
            )
        if self.delay_s < 0:
            raise ResilienceError(f"chaos delay_s must be >= 0, got {self.delay_s}")
        return self


@dataclass(frozen=True)
class ChaosConfig:
    """A seed plus the ordered rules to evaluate at every site."""

    seed: int = 0
    rules: Tuple[ChaosRule, ...] = ()

    def validate(self) -> "ChaosConfig":
        for rule in self.rules:
            rule.validate()
        return self

    def to_dict(self) -> Dict[str, Any]:
        """A picklable/JSON-able form for shipping to worker processes."""
        return {"seed": self.seed, "rules": [asdict(rule) for rule in self.rules]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ChaosConfig":
        rules = tuple(
            ChaosRule(**dict(rule)) for rule in payload.get("rules", ())
        )
        return cls(seed=int(payload.get("seed", 0)), rules=rules).validate()


class _ChaosState:
    """The installed config plus per-rule fire counters (process-local)."""

    def __init__(self, config: ChaosConfig):
        self.config = config.validate()
        self.fired: Dict[int, int] = {index: 0 for index in range(len(config.rules))}

    def _draw(self, index: int, site: str, key: str, count: int) -> float:
        token = f"{self.config.seed}|{index}|{site}|{key}|{count}"
        digest = hashlib.sha256(token.encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "big")).random()

    def matching(self, site: str, key: str, fault_filter: Optional[frozenset]) -> Iterator[ChaosRule]:
        for index, rule in enumerate(self.config.rules):
            if rule.site != site or rule.match not in key:
                continue
            if fault_filter is not None and rule.fault not in fault_filter:
                continue
            if rule.times == 0 or 0 <= rule.times <= self.fired[index]:
                continue
            if rule.probability < 1.0:
                draw = self._draw(index, site, key, self.fired[index])
                if draw >= rule.probability:
                    continue
            self.fired[index] += 1
            yield rule


_ACTIVE: Optional[_ChaosState] = None


def install(config: ChaosConfig) -> None:
    """Activate ``config`` for this process (replacing any previous one)."""
    global _ACTIVE
    _ACTIVE = _ChaosState(config)


def uninstall() -> None:
    """Deactivate fault injection for this process."""
    global _ACTIVE
    _ACTIVE = None


def current() -> Optional[ChaosConfig]:
    """The installed config, if any (forwarded to grid workers)."""
    return _ACTIVE.config if _ACTIVE is not None else None


@contextmanager
def active(config: ChaosConfig) -> Iterator[ChaosConfig]:
    """Context manager scoping :func:`install`/:func:`uninstall` (tests)."""
    install(config)
    try:
        yield config
    finally:
        uninstall()


_RAISING_FAULTS = frozenset({"crash", "hang", "raise", "enospc", "eacces", "sanitizer"})


def chaos_point(site: str, key: str) -> None:
    """Evaluate the active rules at ``site``; may raise, sleep, or exit.

    A no-op (one ``None`` check) when no chaos config is installed, so the
    instrumented production paths pay nothing in normal operation.
    """
    state = _ACTIVE
    if state is None:
        return
    for rule in state.matching(site, key, _RAISING_FAULTS):
        if rule.fault == "crash":
            os._exit(CRASH_EXIT_CODE)
        if rule.fault == "hang":
            time.sleep(rule.delay_s)
            continue
        if rule.fault == "raise":
            raise InjectedFault(f"chaos: injected fault at {site} ({key})")
        if rule.fault == "enospc":
            raise OSError(errno.ENOSPC, f"chaos: no space left on device ({key})")
        if rule.fault == "eacces":
            raise OSError(errno.EACCES, f"chaos: permission denied ({key})")
        if rule.fault == "sanitizer":
            raise SanitizerError(f"chaos: injected invariant violation ({key})")


def should_fire(site: str, key: str, fault: str) -> bool:
    """Consume one matching *advisory* rule at ``site``, without raising.

    The sharded backend's behavioural faults — ``heartbeat-loss`` and
    ``duplicate`` — do not map to an exception at the site that consults
    them; the caller changes its behaviour instead (stop heartbeating,
    double-assign the shard).  Counting and probability draws follow the
    same deterministic rules as :func:`chaos_point`.
    """
    state = _ACTIVE
    if state is None:
        return False
    return any(True for _ in state.matching(site, key, frozenset({fault})))


def corrupt_file(site: str, key: str, path: "os.PathLike[str]") -> None:
    """Apply any matching ``truncate`` rule to the file at ``path``.

    Called between writing a temp file and publishing it with
    ``os.replace`` — the published entry is then a torn write the loader
    must detect and treat as a miss.
    """
    state = _ACTIVE
    if state is None:
        return
    for _ in state.matching(site, key, frozenset({"truncate"})):
        try:
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(max(size // 2, 1))
        except OSError:
            pass


def describe_rules(rules: List[ChaosRule]) -> str:
    """One-line-per-rule summary for logs and docs examples."""
    return "\n".join(
        f"{rule.site}[{rule.match or '*'}] -> {rule.fault} "
        f"(times={rule.times}, p={rule.probability})"
        for rule in rules
    )
