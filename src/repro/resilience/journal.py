"""Checkpoint–resume journal for supervised experiment grids.

A long grid that dies at cell 180 of 200 should not owe the world 180
simulations.  The supervisor checkpoints every completed cell's full
:class:`~repro.sim.report.SimulationReport` into a *grid journal*: one JSON
file, content-keyed by a digest of the runner spec and the cell list, and
rewritten atomically (temp file + ``os.replace``, the same discipline as
:class:`~repro.engine.store.TraceStore`) so an interrupt can never publish
a torn journal.

Reports serialize losslessly: every field is an ``int``, ``str``, or IEEE
double (JSON round-trips doubles exactly), so a resumed cell's report is
bit-identical to the one the interrupted run computed.  ``--resume`` loads
the journal, adopts the completed reports into the runner's memo, and
re-executes only the missing cells; a grid that finishes cleanly deletes
its journal.

Journal I/O faults never kill a run: a journal that cannot be written
degrades to no-checkpointing with a one-time warning, and a corrupt or
foreign journal loads as empty.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Sequence, Union

from repro.cache.access import FetchCounters
from repro.cache.geometry import CacheGeometry
from repro.energy.cache_model import EnergyBreakdown
from repro.energy.processor import ProcessorReport
from repro.sim.report import SimulationReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.grid import GridCell

__all__ = [
    "ResumeJournal",
    "cell_content_key",
    "grid_digest",
    "report_from_dict",
    "report_to_dict",
]

_FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Content keys
# ---------------------------------------------------------------------------
def cell_content_key(cell: "GridCell") -> str:
    """A stable string identifying one cell's full configuration."""
    machine = cell.machine
    geometry = machine.icache
    policy = cell.layout_policy.value if cell.layout_policy is not None else "default"
    return (
        f"{cell.benchmark}|{cell.scheme}"
        f"|icache={geometry.size_bytes}/{geometry.ways}/{geometry.line_size}"
        f"/{geometry.address_bits}"
        f"|wpa={cell.wpa_size}|layout={policy}|sls={cell.same_line_skip}"
        f"|l0={cell.l0_size}|page={machine.page_size}|itlb={machine.itlb_entries}"
    )


def grid_digest(spec: Mapping[str, Any], cell_keys: Sequence[str]) -> str:
    """Digest of (runner spec, cell set) identifying a resumable grid.

    Only result-bearing spec fields participate: the cache directory,
    engine choice, and strict/sanitize switches do not change the numbers
    a grid produces, so changing them must not orphan a journal.
    """
    digest = hashlib.sha256()
    for name in (
        "eval_instructions",
        "profile_instructions",
        "organisation",
        "seed",
        "energy_params",
    ):
        digest.update(f"{name}={spec.get(name)!r}\n".encode())
    for key in sorted(cell_keys):
        digest.update(f"cell={key}\n".encode())
    return digest.hexdigest()[:24]


# ---------------------------------------------------------------------------
# Lossless SimulationReport serialization
# ---------------------------------------------------------------------------
def report_to_dict(report: SimulationReport) -> Dict[str, Any]:
    """A JSON-able form of ``report`` that round-trips bit-identically."""
    return {
        "benchmark": report.benchmark,
        "scheme": report.scheme,
        "layout_description": report.layout_description,
        "geometry": dataclasses.asdict(report.geometry),
        "wpa_size": report.wpa_size,
        "counters": dataclasses.asdict(report.counters),
        "cycles": report.cycles,
        "breakdown": dataclasses.asdict(report.breakdown),
        "processor": {
            "instructions": report.processor.instructions,
            "cycles": report.processor.cycles,
            "breakdown": dataclasses.asdict(report.processor.breakdown),
            "core_pj": report.processor.core_pj,
        },
    }


def report_from_dict(payload: Mapping[str, Any]) -> SimulationReport:
    """Rebuild the exact :class:`SimulationReport` serialized by
    :func:`report_to_dict`."""
    processor = payload["processor"]
    return SimulationReport(
        benchmark=payload["benchmark"],
        scheme=payload["scheme"],
        layout_description=payload["layout_description"],
        geometry=CacheGeometry(**payload["geometry"]),
        wpa_size=payload["wpa_size"],
        counters=FetchCounters(**payload["counters"]),
        cycles=payload["cycles"],
        breakdown=EnergyBreakdown(**payload["breakdown"]),
        processor=ProcessorReport(
            instructions=processor["instructions"],
            cycles=processor["cycles"],
            breakdown=EnergyBreakdown(**processor["breakdown"]),
            core_pj=processor["core_pj"],
        ),
    )


# ---------------------------------------------------------------------------
# The journal file
# ---------------------------------------------------------------------------
class ResumeJournal:
    """Atomic on-disk record of a grid's completed cells."""

    def __init__(self, path: Union[str, Path], grid_key: str):
        self.path = Path(path)
        self.grid_key = grid_key
        self.completed: Dict[str, Dict[str, Any]] = {}
        self._disabled = False

    @classmethod
    def for_grid(
        cls, root: Union[str, Path], grid_key: str
    ) -> "ResumeJournal":
        """The journal of grid ``grid_key`` under cache directory ``root``."""
        return cls(Path(root) / "grids" / f"grid-{grid_key}.json", grid_key)

    # -- reading ------------------------------------------------------------
    def load(self) -> Dict[str, Dict[str, Any]]:
        """Completed cells of a previous identical run (empty when none).

        Corrupt, unreadable, stale-format, or foreign-grid journals all
        load as empty: resuming then simply re-executes everything.
        """
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return {}
        if (
            not isinstance(payload, dict)
            or payload.get("version") != _FORMAT_VERSION
            or payload.get("grid_key") != self.grid_key
            or not isinstance(payload.get("completed"), dict)
        ):
            return {}
        self.completed = dict(payload["completed"])
        return self.completed

    # -- writing ------------------------------------------------------------
    def record(self, cell_key: str, report: SimulationReport) -> None:
        """Checkpoint one completed cell (buffered until :meth:`flush`)."""
        self.completed[cell_key] = report_to_dict(report)

    def flush(self) -> None:
        """Atomically publish the current completed set to disk."""
        if self._disabled:
            return
        payload = {
            "version": _FORMAT_VERSION,
            "grid_key": self.grid_key,
            "completed": self.completed,
        }
        tmp = self.path.with_name(f"{self.path.stem}.{os.getpid()}.tmp.json")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(payload, sort_keys=True))
            os.replace(tmp, self.path)
        except OSError as error:
            self._disabled = True
            warnings.warn(
                f"grid journal write failed ({error}); continuing without "
                f"checkpoints",
                RuntimeWarning,
                stacklevel=2,
            )

    def discard(self) -> None:
        """Delete the journal (a cleanly finished grid needs no checkpoint)."""
        try:
            self.path.unlink()
        except OSError:
            pass
