"""Checkpoint–resume journal for supervised experiment grids.

A long grid that dies at cell 180 of 200 should not owe the world 180
simulations.  The supervisor checkpoints every completed cell's full
:class:`~repro.sim.report.SimulationReport` into a *grid journal*: one
JSONL file, content-keyed by a digest of the runner spec and the cell
list.  The first line is a header naming the format version and grid key;
every following line is one self-contained record — a completed cell's
report, or a shard lease granted by the sharded execution backend
(:mod:`repro.resilience.sharded`).  Flushing *appends* only the records
written since the last flush, so checkpoint cost is proportional to
progress, not to grid size.

Records are replay-safe: a cell recorded twice (a resumed run, a
duplicate delivery after a shard steal) carries the identical report both
times, and :meth:`ResumeJournal.load` keeps the last occurrence.  A crash
mid-append can tear at most the trailing line; the loader skips corrupt
records with a one-time warning and the affected cells simply re-execute.

Reports serialize losslessly: every field is an ``int``, ``str``, or IEEE
double (JSON round-trips doubles exactly), so a resumed cell's report is
bit-identical to the one the interrupted run computed.  ``--resume`` loads
the journal, adopts the completed reports into the runner's memo, and
re-executes only the missing cells; a grid that finishes cleanly deletes
its journal.

Journal I/O faults never kill a run: a journal that cannot be written
degrades to no-checkpointing with a one-time warning, and a corrupt or
foreign journal loads as empty.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Sequence, Union

from repro.cache.access import FetchCounters
from repro.cache.geometry import CacheGeometry
from repro.energy.cache_model import EnergyBreakdown
from repro.energy.processor import ProcessorReport
from repro.sim.report import SimulationReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.grid import GridCell

__all__ = [
    "ResumeJournal",
    "cell_content_key",
    "grid_digest",
    "report_from_dict",
    "report_to_dict",
]

_FORMAT_VERSION = 2


# ---------------------------------------------------------------------------
# Content keys
# ---------------------------------------------------------------------------
def cell_content_key(cell: "GridCell") -> str:
    """A stable string identifying one cell's full configuration."""
    machine = cell.machine
    geometry = machine.icache
    policy = cell.layout_policy.value if cell.layout_policy is not None else "default"
    return (
        f"{cell.benchmark}|{cell.scheme}"
        f"|icache={geometry.size_bytes}/{geometry.ways}/{geometry.line_size}"
        f"/{geometry.address_bits}"
        f"|wpa={cell.wpa_size}|layout={policy}|sls={cell.same_line_skip}"
        f"|l0={cell.l0_size}|page={machine.page_size}|itlb={machine.itlb_entries}"
    )


def grid_digest(spec: Mapping[str, Any], cell_keys: Sequence[str]) -> str:
    """Digest of (runner spec, cell set) identifying a resumable grid.

    Only result-bearing spec fields participate: the cache directory,
    engine choice, and strict/sanitize switches do not change the numbers
    a grid produces, so changing them must not orphan a journal.
    """
    digest = hashlib.sha256()
    for name in (
        "eval_instructions",
        "profile_instructions",
        "organisation",
        "seed",
        "energy_params",
    ):
        digest.update(f"{name}={spec.get(name)!r}\n".encode())
    for key in sorted(cell_keys):
        digest.update(f"cell={key}\n".encode())
    return digest.hexdigest()[:24]


# ---------------------------------------------------------------------------
# Lossless SimulationReport serialization
# ---------------------------------------------------------------------------
def report_to_dict(report: SimulationReport) -> Dict[str, Any]:
    """A JSON-able form of ``report`` that round-trips bit-identically."""
    return {
        "benchmark": report.benchmark,
        "scheme": report.scheme,
        "layout_description": report.layout_description,
        "geometry": dataclasses.asdict(report.geometry),
        "wpa_size": report.wpa_size,
        "counters": dataclasses.asdict(report.counters),
        "cycles": report.cycles,
        "breakdown": dataclasses.asdict(report.breakdown),
        "processor": {
            "instructions": report.processor.instructions,
            "cycles": report.processor.cycles,
            "breakdown": dataclasses.asdict(report.processor.breakdown),
            "core_pj": report.processor.core_pj,
        },
    }


def report_from_dict(payload: Mapping[str, Any]) -> SimulationReport:
    """Rebuild the exact :class:`SimulationReport` serialized by
    :func:`report_to_dict`."""
    processor = payload["processor"]
    return SimulationReport(
        benchmark=payload["benchmark"],
        scheme=payload["scheme"],
        layout_description=payload["layout_description"],
        geometry=CacheGeometry(**payload["geometry"]),
        wpa_size=payload["wpa_size"],
        counters=FetchCounters(**payload["counters"]),
        cycles=payload["cycles"],
        breakdown=EnergyBreakdown(**payload["breakdown"]),
        processor=ProcessorReport(
            instructions=processor["instructions"],
            cycles=processor["cycles"],
            breakdown=EnergyBreakdown(**processor["breakdown"]),
            core_pj=processor["core_pj"],
        ),
    )


# ---------------------------------------------------------------------------
# The journal file
# ---------------------------------------------------------------------------
class ResumeJournal:
    """Append-only on-disk record of a grid's completed cells and leases."""

    def __init__(self, path: Union[str, Path], grid_key: str):
        self.path = Path(path)
        self.grid_key = grid_key
        self.completed: Dict[str, Dict[str, Any]] = {}
        #: Shard leases recorded by the sharded backend, in grant order.
        self.leases: List[Dict[str, Any]] = []
        self._pending: List[str] = []
        self._disabled = False

    @classmethod
    def for_grid(
        cls, root: Union[str, Path], grid_key: str
    ) -> "ResumeJournal":
        """The journal of grid ``grid_key`` under cache directory ``root``."""
        return cls(Path(root) / "grids" / f"grid-{grid_key}.jsonl", grid_key)

    # -- reading ------------------------------------------------------------
    def load(self) -> Dict[str, Dict[str, Any]]:
        """Completed cells of a previous identical run (empty when none).

        An unreadable, stale-format, or foreign-grid journal loads as
        empty: resuming then simply re-executes everything.  A journal
        with corrupt *records* — a line torn by a crash mid-append, or
        trailing garbage — loses only those records: they are skipped with
        a one-time warning and the affected cells re-execute, instead of
        the whole journal (or the run) being thrown away.
        """
        try:
            lines = self.path.read_text().splitlines()
        except (OSError, UnicodeDecodeError):
            return {}
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return {}
        if (
            not isinstance(header, dict)
            or header.get("version") != _FORMAT_VERSION
            or header.get("grid_key") != self.grid_key
        ):
            return {}
        completed: Dict[str, Dict[str, Any]] = {}
        leases: List[Dict[str, Any]] = []
        skipped = 0
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(record, dict):
                skipped += 1
                continue
            if isinstance(record.get("cell"), str) and isinstance(
                record.get("report"), dict
            ):
                # Replay-safe: duplicate records carry identical reports,
                # so the last occurrence simply wins.
                completed[record["cell"]] = record["report"]
            elif isinstance(record.get("lease"), dict):
                leases.append(record["lease"])
            else:
                skipped += 1
        if skipped:
            warnings.warn(
                f"grid journal {self.path.name} held {skipped} corrupt "
                f"record(s) (a crash mid-checkpoint?); skipping them — the "
                f"affected cell(s) will re-execute",
                RuntimeWarning,
                stacklevel=2,
            )
        self.completed = completed
        self.leases = leases
        return self.completed

    def load_leases(self) -> List[Dict[str, Any]]:
        """Shard leases of a previous run, oldest first (see :meth:`load`)."""
        self.load()
        return self.leases

    # -- writing ------------------------------------------------------------
    def record(self, cell_key: str, report: SimulationReport) -> None:
        """Checkpoint one completed cell (buffered until :meth:`flush`)."""
        payload = report_to_dict(report)
        self.completed[cell_key] = payload
        self._pending.append(
            json.dumps({"cell": cell_key, "report": payload}, sort_keys=True)
        )

    def record_lease(
        self,
        shard_id: str,
        worker: int,
        attempt: int,
        cell_keys: Sequence[str],
    ) -> None:
        """Checkpoint one shard-lease grant (buffered until :meth:`flush`).

        Lease records are an audit trail of which shards were in flight
        when a run died: resume re-executes exactly the cells missing from
        the cell records, i.e. only the unfinished shards' work.
        """
        lease = {
            "shard": shard_id,
            "worker": worker,
            "attempt": attempt,
            "cells": list(cell_keys),
        }
        self.leases.append(lease)
        self._pending.append(json.dumps({"lease": lease}, sort_keys=True))

    def flush(self) -> None:
        """Append the records buffered since the last flush to disk.

        The first flush writes the header line.  A crash mid-append can
        tear at most the trailing line, which :meth:`load` recovers from
        by skipping it.
        """
        if self._disabled or not self._pending:
            return
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists()
            with open(self.path, "a") as handle:
                if fresh:
                    header = {
                        "version": _FORMAT_VERSION,
                        "grid_key": self.grid_key,
                    }
                    handle.write(json.dumps(header, sort_keys=True) + "\n")
                for line in self._pending:
                    handle.write(line + "\n")
            self._pending.clear()
        except OSError as error:
            self._disabled = True
            warnings.warn(
                f"grid journal write failed ({error}); continuing without "
                f"checkpoints",
                RuntimeWarning,
                stacklevel=2,
            )

    def discard(self) -> None:
        """Delete the journal (a cleanly finished grid needs no checkpoint)."""
        try:
            self.path.unlink()
        except OSError:
            pass
