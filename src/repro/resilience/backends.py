"""Pluggable execution backends for the supervised experiment grid.

:func:`~repro.resilience.supervisor.supervise_grid` decides *what* must be
simulated (memo misses, resumable cells, retry budgets); an
:class:`ExecutionBackend` decides *where and how* that work runs.  A
backend receives the grid's pending chunks, fans them across whatever
execution substrate it owns, streams every completed cell back through the
supervisor's ``adopt`` callback (which memoises and checkpoints it), and
returns the chunks it could not finish — the supervisor's in-process
last-resort rung then picks those up.  Supervision semantics therefore do
not depend on the backend: retries, engine fallback, journalling, and
failure reporting behave identically everywhere.

Two backends ship:

* :class:`LocalBackend` — the classic one-host pool: chunks fan across
  supervised worker processes, chunked by benchmark (see
  :func:`~repro.resilience.supervisor._run_parallel`).
* ``ShardedBackend`` (:mod:`repro.resilience.sharded`) — shards grid
  families by the planner key so each shard reuses one trace, and makes
  shard execution fault-tolerant end to end: lease-based ownership with
  heartbeats, lost-shard reassignment, work-stealing of stragglers with
  duplicate-safe result delivery, and graceful degradation to
  :class:`LocalBackend` when its transport fails.

Select a backend with ``ResilienceConfig(backend=...)`` or the grid
commands' ``--backend`` flag; see docs/robustness.md.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.errors import ResilienceError
from repro.resilience.policy import BACKEND_CHOICES, FailureReport, ResilienceConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.grid import GridCell
    from repro.resilience.journal import ResumeJournal
    from repro.resilience.supervisor import _Chunk
    from repro.sim.report import SimulationReport

__all__ = ["ExecutionBackend", "LocalBackend", "resolve_backend"]

#: Adoption callback: memoise + checkpoint one completed cell.
Adopt = Callable[["GridCell", "SimulationReport"], None]


class ExecutionBackend(ABC):
    """Where and how a supervised grid's pending chunks execute.

    Contract: every cell that completes is delivered through ``adopt``
    exactly once (backends that can receive duplicate results must dedup
    before adopting), recovered and fatal incidents are appended to
    ``failures``, planner/backend activity is merged into ``stats``, and
    the chunks that exhausted the backend's own recovery budget are
    returned for the supervisor's in-process fallback.
    """

    #: The ``--backend`` spelling of this backend.
    name: str = "abstract"

    @abstractmethod
    def run(
        self,
        runner: Any,
        chunks: List["_Chunk"],
        jobs: int,
        config: ResilienceConfig,
        failures: List[FailureReport],
        adopt: Adopt,
        stats: Dict[str, Any],
        journal: Optional["ResumeJournal"] = None,
    ) -> List["_Chunk"]:
        """Execute ``chunks``; return the chunks needing in-process fallback."""


class LocalBackend(ExecutionBackend):
    """The single-host worker pool (the pre-backend behaviour, unchanged).

    Chunks are fanned across supervised worker processes chunked by
    benchmark; crashed, hung, or timed-out workers are replaced with fresh
    ones until the chunk's retry budget is spent.
    """

    name = "local"

    def run(
        self,
        runner: Any,
        chunks: List["_Chunk"],
        jobs: int,
        config: ResilienceConfig,
        failures: List[FailureReport],
        adopt: Adopt,
        stats: Dict[str, Any],
        journal: Optional["ResumeJournal"] = None,
    ) -> List["_Chunk"]:
        # Imported here: the supervisor imports this module for backend
        # resolution, so a module-level import would be circular.
        from repro.resilience.supervisor import _run_parallel

        return _run_parallel(runner, chunks, jobs, config, failures, adopt, stats)


def resolve_backend(name: Optional[str]) -> ExecutionBackend:
    """The backend registered under ``name`` (``None`` means local)."""
    if name is None or name == "local":
        return LocalBackend()
    if name == "sharded":
        from repro.resilience.sharded import ShardedBackend

        return ShardedBackend()
    raise ResilienceError(
        f"unknown execution backend {name!r}; choose from "
        f"{sorted(BACKEND_CHOICES)}"
    )
