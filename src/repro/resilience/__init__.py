"""Resilient experiment execution.

Supervised grids with retry/backoff, checkpoint–resume, engine fallback,
pluggable execution backends, and a deterministic fault-injection (chaos)
harness.  See :mod:`repro.resilience.supervisor` for the recovery ladder,
:mod:`repro.resilience.policy` for configuration and failure records,
:mod:`repro.resilience.backends` / :mod:`repro.resilience.sharded` for
the execution backends (local pool; fault-tolerant sharding with leases,
heartbeats, and work-stealing), :mod:`repro.resilience.journal` for
checkpoint–resume, and :mod:`repro.resilience.chaos` for fault injection.
"""

from repro.resilience import chaos
from repro.resilience.backends import (
    ExecutionBackend,
    LocalBackend,
    resolve_backend,
)
from repro.resilience.chaos import ChaosConfig, ChaosRule, InjectedFault
from repro.resilience.journal import ResumeJournal, cell_content_key, grid_digest
from repro.resilience.policy import (
    BACKEND_CHOICES,
    DEFAULT_RESILIENCE,
    FailureReport,
    FallbackPolicy,
    ResilienceConfig,
)
from repro.resilience.sharded import Shard, ShardedBackend, plan_shards
from repro.resilience.supervisor import GridSummary, run_cell, supervise_grid

__all__ = [
    "BACKEND_CHOICES",
    "ChaosConfig",
    "ChaosRule",
    "DEFAULT_RESILIENCE",
    "ExecutionBackend",
    "FailureReport",
    "FallbackPolicy",
    "GridSummary",
    "InjectedFault",
    "LocalBackend",
    "ResilienceConfig",
    "ResumeJournal",
    "Shard",
    "ShardedBackend",
    "cell_content_key",
    "chaos",
    "grid_digest",
    "plan_shards",
    "resolve_backend",
    "run_cell",
    "supervise_grid",
]
