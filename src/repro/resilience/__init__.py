"""Resilient experiment execution.

Supervised grids with retry/backoff, checkpoint–resume, engine fallback,
and a deterministic fault-injection (chaos) harness.  See
:mod:`repro.resilience.supervisor` for the recovery ladder,
:mod:`repro.resilience.policy` for configuration and failure records,
:mod:`repro.resilience.journal` for checkpoint–resume, and
:mod:`repro.resilience.chaos` for fault injection.
"""

from repro.resilience import chaos
from repro.resilience.chaos import ChaosConfig, ChaosRule, InjectedFault
from repro.resilience.journal import ResumeJournal, cell_content_key, grid_digest
from repro.resilience.policy import (
    DEFAULT_RESILIENCE,
    FailureReport,
    FallbackPolicy,
    ResilienceConfig,
)
from repro.resilience.supervisor import GridSummary, run_cell, supervise_grid

__all__ = [
    "ChaosConfig",
    "ChaosRule",
    "DEFAULT_RESILIENCE",
    "FailureReport",
    "FallbackPolicy",
    "GridSummary",
    "InjectedFault",
    "ResilienceConfig",
    "ResumeJournal",
    "cell_content_key",
    "chaos",
    "grid_digest",
    "run_cell",
    "supervise_grid",
]
