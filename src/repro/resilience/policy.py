"""Resilience policy: retry/backoff/timeout settings and failure records.

A :class:`ResilienceConfig` describes how the supervised grid runner (see
:mod:`repro.resilience.supervisor`) reacts to failure: how often a cell or
a worker chunk is retried, how long to back off between attempts (with
deterministic, seedable jitter), how long a worker chunk may run before it
is killed, whether the vectorized engine may degrade to the reference
schemes, and whether a run resumes from a checkpoint journal.

Every recovery — and every failure that exhausted its budget — is recorded
as a structured :class:`FailureReport` so partial completions can explain
exactly what happened and what the supervisor did about it.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.errors import (
    AnalysisError,
    CacheConfigError,
    EnergyModelError,
    ExperimentError,
    LayoutError,
    ProgramError,
    ResilienceError,
    SanitizerError,
    SchemeError,
    WorkloadError,
)

__all__ = [
    "BACKEND_CHOICES",
    "DEFAULT_RESILIENCE",
    "FailureReport",
    "FallbackPolicy",
    "ResilienceConfig",
    "cause_chain",
    "is_retryable",
    "render_failures",
]


class FallbackPolicy(enum.Enum):
    """What the supervisor may degrade to when the fast path fails."""

    #: Never change engines; exhaust retries and give up.
    NONE = "none"
    #: Re-run a failing cell on the pure-Python reference schemes (the
    #: engines are bit-identical, so results do not change).
    REFERENCE = "reference"


#: Static configuration/model errors: retrying cannot change the outcome.
_NON_RETRYABLE = (
    AnalysisError,
    CacheConfigError,
    EnergyModelError,
    ExperimentError,
    LayoutError,
    ProgramError,
    SchemeError,
    WorkloadError,
)


#: Execution backends a :class:`ResilienceConfig` may name (the registry
#: itself lives in :mod:`repro.resilience.backends`; this set exists so
#: config validation does not import the backend machinery).
BACKEND_CHOICES = frozenset({"local", "sharded"})


def is_retryable(error: BaseException) -> bool:
    """Can a fresh attempt plausibly succeed where this one failed?

    Static configuration errors (bad geometry, unknown scheme, strict
    pre-flight diagnostics) are deterministic and never retried.  A
    :class:`~repro.errors.SanitizerError` is deterministic *per engine*,
    so it is not retried either — it triggers the engine fallback instead.
    Everything else (I/O faults, killed workers, injected chaos, plain
    bugs) gets its retry budget.
    """
    if isinstance(error, SanitizerError):
        return False
    return not isinstance(error, _NON_RETRYABLE)


def cause_chain(error: BaseException, limit: int = 8) -> Tuple[str, ...]:
    """The ``raise ... from ...`` chain as compact human-readable strings."""
    chain: List[str] = []
    seen: set = set()
    current: Optional[BaseException] = error
    while current is not None and id(current) not in seen and len(chain) < limit:
        seen.add(id(current))
        chain.append(f"{type(current).__name__}: {current}")
        current = current.__cause__ or current.__context__
    return tuple(chain)


@dataclass(frozen=True)
class ResilienceConfig:
    """How supervised execution reacts to failure (see module docstring).

    ``retries`` bounds *extra* attempts: a cell (and, in parallel grids, a
    worker chunk) runs at most ``retries + 1`` times before the next rung
    of the recovery ladder.  ``timeout_s`` is the wall-clock budget of one
    worker chunk attempt (``None`` disables timeouts).  ``resume`` makes
    :func:`~repro.engine.grid.run_grid` reload the checkpoint journal of
    an interrupted identical grid and re-execute only the missing cells.
    """

    retries: int = 2
    backoff_s: float = 0.05
    jitter: float = 0.5
    timeout_s: Optional[float] = None
    fallback: FallbackPolicy = FallbackPolicy.REFERENCE
    resume: bool = False
    seed: int = 0
    #: Which execution backend fans a parallel grid out (see
    #: :mod:`repro.resilience.backends`): ``"local"`` is the benchmark-
    #: chunked worker pool, ``"sharded"`` the lease/heartbeat/work-stealing
    #: backend of :mod:`repro.resilience.sharded`.
    backend: str = "local"
    #: Target shard count for the sharded backend (``None``: one shard per
    #: planner family key).  A hint — shards never mix family keys.
    shards: Optional[int] = None
    #: Seconds a shard lease stays valid without a heartbeat before the
    #: coordinator revokes it and reassigns the shard.
    lease_timeout_s: float = 5.0

    def validate(self) -> "ResilienceConfig":
        """Raise :class:`~repro.errors.ResilienceError` on invalid settings."""
        if self.retries < 0:
            raise ResilienceError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0:
            raise ResilienceError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.jitter < 0:
            raise ResilienceError(f"jitter must be >= 0, got {self.jitter}")
        if self.timeout_s is not None and self.timeout_s < 0:
            raise ResilienceError(f"timeout_s must be >= 0, got {self.timeout_s}")
        if not isinstance(self.fallback, FallbackPolicy):
            raise ResilienceError(f"unknown fallback policy {self.fallback!r}")
        if self.backend not in BACKEND_CHOICES:
            raise ResilienceError(
                f"unknown execution backend {self.backend!r}; choose from "
                f"{sorted(BACKEND_CHOICES)}"
            )
        if self.shards is not None and self.shards < 1:
            raise ResilienceError(f"shards must be >= 1, got {self.shards}")
        if self.lease_timeout_s <= 0:
            raise ResilienceError(
                f"lease_timeout_s must be > 0, got {self.lease_timeout_s}"
            )
        return self

    def backoff_delay(self, attempt: int, token: str) -> float:
        """Seconds to sleep before retry ``attempt`` (0-based) of ``token``.

        Exponential in the attempt number with deterministic jitter: the
        jitter factor is derived from ``(seed, token, attempt)`` alone, so
        a re-run of the same grid backs off identically regardless of
        scheduling order.
        """
        if self.backoff_s <= 0:
            return 0.0
        base = self.backoff_s * (2.0**attempt)
        if self.jitter <= 0:
            return base
        digest = hashlib.sha256(
            f"{self.seed}|{token}|{attempt}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return base * (1.0 + self.jitter * unit)

    def with_fallback(self, name: str) -> "ResilienceConfig":
        """A copy with the fallback policy parsed from its CLI spelling."""
        try:
            policy = FallbackPolicy(name)
        except ValueError:
            choices = ", ".join(p.value for p in FallbackPolicy)
            raise ResilienceError(
                f"unknown fallback policy {name!r}; choose from {choices}"
            ) from None
        return replace(self, fallback=policy)


#: What ``run_grid`` uses when the runner carries no explicit config.
DEFAULT_RESILIENCE = ResilienceConfig()


@dataclass(frozen=True)
class FailureReport:
    """One supervised incident: what failed, how often, and the recovery.

    ``site`` is where the incident happened (``"cell"`` for one simulation,
    ``"worker"`` for a whole benchmark chunk's process, ``"shard"`` /
    ``"lease"`` / ``"steal"`` / ``"transport"`` for the sharded backend's
    mechanisms).  ``causes`` holds the exception cause chains of every
    failed attempt, oldest first.  ``recovery`` names the ladder rung that
    finally succeeded — ``retry``, ``engine-fallback``, ``fresh-worker``,
    ``in-process``, the family-tier rungs (``unpruned``, ``batch``,
    ``per-cell``), or the sharded backend's ``reassigned``,
    ``work-steal``, ``duplicate-delivery``, and ``local-backend`` — or
    ``none`` when the incident was not recovered.
    """

    site: str
    benchmark: str
    cell: str
    attempts: int
    causes: Tuple[str, ...] = ()
    recovery: str = "none"
    recovered: bool = False

    def describe(self) -> str:
        outcome = (
            f"recovered via {self.recovery}"
            if self.recovered
            else "NOT recovered"
        )
        last_cause = self.causes[-1] if self.causes else "unknown cause"
        return (
            f"[{self.site}] {self.cell}: {outcome} after "
            f"{self.attempts} attempt(s); last cause: {last_cause}"
        )


def render_failures(failures: List[FailureReport]) -> str:
    """Multi-line summary of every incident, for stderr on partial runs."""
    lines = [failure.describe() for failure in failures]
    recovered = sum(1 for failure in failures if failure.recovered)
    lines.append(
        f"{len(failures)} incident(s): {recovered} recovered, "
        f"{len(failures) - recovered} fatal"
    )
    return "\n".join(lines)
