"""Seeded chaos drills: the library behind ``repro chaos``.

A *drill* derives a deterministic fault schedule from a seed, runs a
supervised parallel grid under it, and checks the acceptance bar of
docs/robustness.md: results bit-identical to a fault-free serial run,
with every injected incident recovered.  The schedule covers every
recovery rung of the chosen execution backend at once — worker crashes
and hangs for the local pool; shard crashes, silenced heartbeats (lease
expiry), forced duplicate grants, and transport failure for the sharded
backend — plus the backend-independent faults (kernel sanitizer trips,
probabilistic cell faults, a full disk mid-cache-write).

:func:`run_drill` runs one ``(seed, backend)`` drill and returns a
summary dict; :func:`run_matrix` sweeps a seed matrix across backends and
aggregates.  Given the same seeds, the schedules and the verdict fields
(``identical``, ``recovered``, ``ok``) are deterministic; incident lists
are included for humans and may vary in order with scheduling.

``scripts/chaos_check.py`` is a thin shim over the same entry point, kept
for CI compatibility.
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.grid import GridCell
from repro.experiments.runner import ExperimentRunner
from repro.resilience import chaos
from repro.resilience.chaos import ChaosConfig, ChaosRule, describe_rules
from repro.resilience.policy import ResilienceConfig

__all__ = ["drill_cells", "build_rules", "run_drill", "run_matrix"]

KB = 1024

#: Trace budgets small enough for CI, large enough to exercise real replay.
_EVAL_INSTRUCTIONS = 8_000
_PROFILE_INSTRUCTIONS = 4_000
#: Shard leases expire fast so injected heartbeat loss recovers in well
#: under a second of wall clock.
_LEASE_TIMEOUT_S = 0.5


def drill_cells() -> List[GridCell]:
    """The standard drill grid: two benchmarks, baseline + way-placement."""
    return [
        GridCell("crc", "baseline"),
        GridCell("crc", "way-placement", wpa_size=8 * KB),
        GridCell("sha", "baseline"),
        GridCell("sha", "way-placement", wpa_size=8 * KB),
    ]


def _make_runner(cache_dir: str, **kwargs: Any) -> ExperimentRunner:
    return ExperimentRunner(
        cache_dir=cache_dir,
        eval_instructions=_EVAL_INSTRUCTIONS,
        profile_instructions=_PROFILE_INSTRUCTIONS,
        **kwargs,
    )


def build_rules(seed: int, backend: str = "local") -> Tuple[ChaosRule, ...]:
    """A seed-derived schedule covering every recovery rung at once.

    The backend-independent tail (sanitizer trip, probabilistic cell
    faults, disk faults mid-cache-write) is shared; the head injects the
    faults specific to how the chosen backend distributes work.
    """
    rng = random.Random(seed)
    crash_bench = rng.choice(["crc", "sha"])
    hang_bench = "sha" if crash_bench == "crc" else "crc"
    shared = (
        ChaosRule("kernel", "sanitizer", match="way-placement", times=1),
        ChaosRule("cell", "raise", times=-1, probability=0.2),
        ChaosRule("store.save", "enospc", times=1),
        ChaosRule("store.save", "truncate", match="events:", times=1),
        # A shared-memory attach fails: the worker must degrade to its own
        # store/derive path with bit-identical results.
        ChaosRule("plane.attach", "raise", times=1),
    )
    if backend != "sharded":
        return (
            ChaosRule("worker", "crash", match=f"{crash_bench}@1", times=1),
            ChaosRule(
                "worker", "hang", match=f"{hang_bench}@1", times=1, delay_s=60.0
            ),
        ) + shared
    head = [
        # Every shard's first lease dies; reassignment recovers each.
        ChaosRule("shard", "crash", match="@1", times=1),
        # One benchmark's shards go mute while still computing: lease
        # expiry reassigns them, the mute workers later duplicate-deliver.
        ChaosRule("lease", "heartbeat-loss", match=hang_bench, times=1),
        ChaosRule("shard", "hang", match=hang_bench, times=1, delay_s=1.5),
        # A forced duplicate grant: first delivery wins, the copy dedups.
        ChaosRule("steal", "duplicate", match=crash_bench, times=1),
    ]
    if rng.random() < 0.5:
        # Some seeds tear the transport itself mid-run: the whole backend
        # must degrade to the local pool and still finish bit-identically.
        head.append(ChaosRule("transport", "raise", match="recv", times=1))
    return tuple(head) + shared


def run_drill(
    seed: int,
    backend: str = "local",
    jobs: int = 2,
    reference: Optional[List[Any]] = None,
) -> Dict[str, Any]:
    """One seeded drill; returns its summary dict (see module docstring).

    ``reference`` optionally supplies the fault-free serial reports (so a
    matrix does not recompute them per run).
    """
    want = reference
    if want is None:
        want = _make_runner("off").run_grid(drill_cells(), jobs=1)
    config = ChaosConfig(seed=seed, rules=build_rules(seed, backend))
    with tempfile.TemporaryDirectory() as scratch:
        runner = _make_runner(
            str(Path(scratch) / "cache"),
            resilience=ResilienceConfig(
                retries=3,
                backoff_s=0.01,
                timeout_s=10.0,
                backend=backend,
                lease_timeout_s=_LEASE_TIMEOUT_S,
            ),
        )
        # Warm exactly one benchmark's traces before the faults go live:
        # the supervisor publishes warm artifacts into the shared-memory
        # plane, giving the plane.attach rule a real attachment to hit,
        # while the other benchmark stays cold and keeps exercising the
        # per-worker derive-and-persist path under the store.save faults.
        for cell in drill_cells():
            if cell.benchmark != "crc":
                continue
            policy = runner._resolve_layout_policy(cell.scheme, cell.layout_policy)
            runner.events(cell.benchmark, policy, cell.machine.icache.line_size)
        with chaos.active(config):
            got = runner.run_grid(drill_cells(), jobs=jobs)
    failures = list(runner.last_failures)
    grid = runner.last_grid
    identical = got == want
    recovered = all(failure.recovered for failure in failures)
    return {
        "seed": seed,
        "backend": backend,
        "jobs": jobs,
        "schedule": describe_rules(list(config.rules)).splitlines(),
        "identical": identical,
        "recovered": recovered,
        "ok": identical and recovered,
        "incidents": [failure.describe() for failure in failures],
        "sites": sorted({failure.site for failure in failures}),
        "shards": 0 if grid is None else grid.shards,
        "duplicate_results": 0 if grid is None else grid.duplicate_results,
    }


def run_matrix(
    seeds: Sequence[int],
    backends: Sequence[str] = ("local",),
    jobs: int = 2,
) -> Dict[str, Any]:
    """Drill every ``(seed, backend)`` pair; aggregate into one summary."""
    reference = _make_runner("off").run_grid(drill_cells(), jobs=1)
    runs = [
        run_drill(seed, backend=backend, jobs=jobs, reference=reference)
        for backend in backends
        for seed in seeds
    ]
    return {
        "seeds": list(seeds),
        "backends": list(backends),
        "runs": runs,
        "ok": all(run["ok"] for run in runs),
    }
