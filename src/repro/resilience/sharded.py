"""Fault-tolerant sharded execution backend: leases, heartbeats, stealing.

The local backend chunks a grid by benchmark; this backend shards it by
the *planner key* — ``(benchmark, resolved layout policy, cache
geometry)``, the same key :func:`repro.engine.grid.plan_families` batches
by — so every shard's cells replay one shared trace and a shard is the
natural unit of distribution.  Shards run on worker processes that talk to
the coordinator over a deliberately tiny one-directional message-queue
protocol, one channel per lease
(plain dicts: ``heartbeat``, per-cell ``cell`` results carrying the
losslessly-serialized report, ``done``, ``fatal``), so the workers could
equally be remote hosts.

Fault tolerance is end to end:

* **Leases.** Each shard grant is a lease owned by one worker; workers
  heartbeat while they compute, and the grant is checkpointed to the
  resume journal so an interrupted run knows which shards were in flight.
* **Lost shards.** A lease whose heartbeats stop (worker crash, hang, or
  an injected ``heartbeat-loss`` fault) expires after
  ``lease_timeout_s`` and the shard is reassigned, up to the configured
  retry budget; a shard that exhausts it falls back to the supervisor's
  in-process rung.  The expired worker is *not* killed — like a
  partitioned remote host, it may still finish and deliver.
* **Work-stealing.** When the queue is empty and slots are idle, a
  straggler shard is speculatively duplicated onto a second worker; chaos
  can also force a duplicate grant at lease time.
* **Duplicate-safe delivery.** Results stream per cell, keyed by the
  cell's content key; the first delivery wins and later copies are
  counted and dropped, so steals, expired-but-alive workers, and resumed
  journals can never double-adopt.  The engines are bit-identical, so a
  duplicate necessarily carries the same numbers.
* **Graceful degradation.** If the transport itself fails
  (:class:`~repro.errors.TransportError`), the whole backend degrades to
  :class:`~repro.resilience.backends.LocalBackend` for whatever cells
  remain: a transport outage costs locality, never results.

See docs/robustness.md ("Execution backends and failure model").
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from multiprocessing.connection import wait as connection_wait
from dataclasses import asdict, dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import TransportError
from repro.resilience import chaos
from repro.resilience.backends import Adopt, ExecutionBackend, LocalBackend
from repro.resilience.journal import (
    cell_content_key,
    report_from_dict,
    report_to_dict,
)
from repro.resilience.policy import FailureReport, ResilienceConfig, cause_chain
from repro.resilience.supervisor import (
    _Chunk,
    _merge_stats,
    _mp_context,
    _new_stats,
    _peak_rss_kb,
    run_cells,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.grid import GridCell
    from repro.resilience.journal import ResumeJournal

__all__ = ["Shard", "ShardedBackend", "plan_shards"]

#: Seconds between coordinator polls of the result queue.
_POLL_INTERVAL_S = 0.01
#: Grace period for a cleanly-exited worker's final queued messages.
_DRAIN_TIMEOUT_S = 1.0
#: Heartbeat period as a fraction of the lease timeout.
_HEARTBEAT_FRACTION = 0.2


# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Shard:
    """One planner-key group of cells, the unit of distributed execution."""

    shard_id: str
    benchmark: str
    cells: Tuple["GridCell", ...]


def plan_shards(
    cells: Sequence["GridCell"],
    resolve_policy: Callable[..., Any],
    target: Optional[int] = None,
) -> List[Shard]:
    """Group ``cells`` into shards by the family-planner key.

    Cells sharing ``(benchmark, resolved layout policy, icache geometry)``
    land in one shard, so each shard replays a single shared trace.
    ``target`` is a hint: the largest shards are split (deterministically,
    never across planner keys) until the count reaches it or every shard
    is a single cell.  Fewer groups than ``target`` yields fewer shards —
    a shard never mixes keys.
    """
    groups: Dict[Tuple[str, str, str], List["GridCell"]] = {}
    order: List[Tuple[str, str, str]] = []
    for cell in cells:
        try:
            policy = str(resolve_policy(cell.scheme, cell.layout_policy).value)
        except Exception:
            policy = (
                cell.layout_policy.value
                if cell.layout_policy is not None
                else "default"
            )
        geometry = cell.machine.icache
        key = (
            cell.benchmark,
            policy,
            f"{geometry.size_bytes}B/{geometry.ways}w/{geometry.line_size}L",
        )
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(cell)

    parts: List[Tuple[Tuple[str, str, str], List["GridCell"]]] = [
        (key, groups[key]) for key in order
    ]
    if target is not None:
        while len(parts) < target:
            widest = max(range(len(parts)), key=lambda i: len(parts[i][1]))
            key, members = parts[widest]
            if len(members) < 2:
                break
            half = (len(members) + 1) // 2
            parts[widest] = (key, members[:half])
            parts.insert(widest + 1, (key, members[half:]))

    multiplicity = Counter(key for key, _ in parts)
    seen: Dict[Tuple[str, str, str], int] = {}
    shards: List[Shard] = []
    for key, members in parts:
        benchmark, policy, geometry = key
        shard_id = f"{benchmark}:{policy}:{geometry}"
        if multiplicity[key] > 1:
            piece = seen.get(key, 0)
            seen[key] = piece + 1
            shard_id = f"{shard_id}#{piece}"
        shards.append(Shard(shard_id, benchmark, tuple(members)))
    return shards


# ---------------------------------------------------------------------------
# Transport: a tiny one-directional worker -> coordinator message protocol
# ---------------------------------------------------------------------------
class _WorkerChannel:
    """Worker side of the shard transport.

    One message channel per lease.  A shared queue would couple workers
    through its write lock — a worker crashing mid-send (exactly what the
    chaos drill does) would leave the lock orphaned and silently hang
    every later sender; with one channel each, a dying worker can tear
    only its own stream, which the coordinator observes as that lease
    going quiet.  Sends are serialized because the heartbeat thread and
    the result path share the channel.
    """

    def __init__(self, conn: Any, worker_id: int, shard_id: str):
        self._conn = conn
        self._worker = worker_id
        self._shard = shard_id
        self._lock = threading.Lock()

    def send(self, kind: str, **payload: Any) -> None:
        chaos.chaos_point("transport", f"send:{self._worker}:{kind}")
        payload["kind"] = kind
        payload["worker"] = self._worker
        payload["shard"] = self._shard
        with self._lock:
            self._conn.send(payload)


class _ChannelTransport:
    """Coordinator side of the shard transport.

    Multiplexes every lease's message channel.  A channel whose worker
    died mid-message simply ends (and is dropped — the lease machinery
    owns worker liveness); a failure of the transport *itself* — an
    unopenable channel, an undecodable stream, injected ``transport``
    chaos — surfaces as :class:`TransportError`, the signal for
    :class:`ShardedBackend` to degrade to the local backend.
    """

    def __init__(self, context: Any):
        self._context = context
        self._readers: List[Any] = []
        try:
            chaos.chaos_point("transport", "open")
        except TransportError:
            raise
        except Exception as error:
            raise TransportError(
                f"cannot open the shard transport: {error}"
            ) from error

    def open_channel(self) -> Tuple[Any, Any]:
        """A fresh ``(reader, writer)`` channel for one lease grant."""
        try:
            chaos.chaos_point("transport", "open")
            reader, writer = self._context.Pipe(duplex=False)
        except TransportError:
            raise
        except Exception as error:
            raise TransportError(
                f"cannot open a shard transport channel: {error}"
            ) from error
        self._readers.append(reader)
        return reader, writer

    def poll(self, timeout: float) -> Optional[Dict[str, Any]]:
        try:
            chaos.chaos_point("transport", "recv")
            if not self._readers:
                if timeout > 0:
                    time.sleep(timeout)
                return None
            ready = connection_wait(self._readers, timeout)
        except TransportError:
            raise
        except Exception as error:
            raise TransportError(
                f"shard transport receive failed: {error}"
            ) from error
        for reader in ready:
            try:
                message = reader.recv()
            except (EOFError, OSError):
                # The writer died (possibly mid-message): the channel is
                # gone, the lease machinery handles the worker.
                self._discard(reader)
                continue
            except TransportError:
                raise
            except Exception as error:
                raise TransportError(
                    f"shard transport receive failed: {error}"
                ) from error
            return message  # type: ignore[no-any-return]
        return None

    def _discard(self, reader: Any) -> None:
        try:
            reader.close()
        except Exception:
            pass
        try:
            self._readers.remove(reader)
        except ValueError:
            pass

    def close(self) -> None:
        for reader in list(self._readers):
            self._discard(reader)


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------
def _shard_worker_main(
    spec: Dict[str, Any],
    config: ResilienceConfig,
    chaos_config: Optional[chaos.ChaosConfig],
    plane_handles: Optional[Dict[str, Any]],
    shard: Shard,
    attempt: int,
    worker_id: int,
    skip: Tuple[str, ...],
    conn: Any,
) -> None:
    """Worker entry point: simulate one shard, stream results per cell.

    Cells already delivered by another lease of the same shard arrive in
    ``skip`` and are not recomputed.  The full in-worker supervision
    ladder of :func:`~repro.resilience.supervisor.run_cells` applies, so
    sharding never weakens per-cell recovery.
    """
    rss_baseline = _peak_rss_kb()
    channel = _WorkerChannel(conn, worker_id, shard.shard_id)
    stop = threading.Event()
    try:
        if chaos_config is not None:
            chaos.install(chaos_config)
        from repro.engine import store as store_module

        # The parent relays a single degradation warning (see
        # _merge_stats); per-worker copies would just be noise.
        store_module.suppress_write_warnings()

        token = f"{shard.shard_id}@{attempt}"
        # An injected heartbeat-loss keeps the worker computing but mute:
        # the partitioned-host scenario the lease timeout exists for.
        silenced = chaos.should_fire("lease", token, "heartbeat-loss")
        interval = max(config.lease_timeout_s * _HEARTBEAT_FRACTION, 0.005)

        def beat() -> None:
            while not stop.wait(interval):
                try:
                    channel.send("heartbeat")
                except Exception:
                    return

        if not silenced:
            channel.send("heartbeat")
            threading.Thread(target=beat, daemon=True).start()
        chaos.chaos_point("shard", token)

        from repro.experiments.runner import ExperimentRunner

        runner = ExperimentRunner(**spec)
        if plane_handles:
            from repro.engine.plane import PlaneClient

            runner.plane = PlaneClient(plane_handles)
        failures: List[FailureReport] = []
        stats = _new_stats()
        error: Optional[str] = None
        skip_set = frozenset(skip)
        cells = [
            cell for cell in shard.cells if cell_content_key(cell) not in skip_set
        ]

        def emit(index: int, report: Any) -> None:
            channel.send(
                "cell",
                cell=cell_content_key(cells[index]),
                report=report_to_dict(report),
            )

        def fail(index: int, exc: BaseException) -> None:
            nonlocal error
            if error is None:
                error = f"{type(exc).__name__}: {exc}"

        run_cells(runner, cells, config, failures, emit, fail, stats)
        store = getattr(runner, "store", None)
        if store is not None and getattr(store, "writes_disabled", False):
            stats["store_degraded"] = str(store.root)
        plane = getattr(runner, "plane", None)
        if plane is not None:
            stats["plane_attached"] = int(getattr(plane, "attached", 0))
            stats["plane_degraded"] = int(getattr(plane, "degraded", 0))
        stats["peak_rss_kb"] = max(0, _peak_rss_kb() - rss_baseline)
        channel.send(
            "done",
            failures=[asdict(failure) for failure in failures],
            stats=stats,
            error=error,
        )
    except BaseException as exc:  # noqa: B036 - report, then die
        try:
            channel.send("fatal", error=f"{type(exc).__name__}: {exc}")
        except Exception:
            pass
    finally:
        stop.set()


def _failure_from_dict(payload: Mapping[str, Any]) -> FailureReport:
    data = dict(payload)
    data["causes"] = tuple(data.get("causes", ()))
    return FailureReport(**data)


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------
@dataclass
class _Lease:
    """One shard grant: which worker owns which shard, and since when."""

    shard: Shard
    attempt: int
    worker_id: int
    process: Any
    granted_at: float
    last_heartbeat: float
    speculative: bool = False
    dead_since: Optional[float] = None


class _Coordinator:
    """Grants leases, watches heartbeats, reassigns, steals, dedups."""

    def __init__(
        self,
        runner: Any,
        shards: Sequence[Shard],
        jobs: int,
        config: ResilienceConfig,
        failures: List[FailureReport],
        adopt: Adopt,
        stats: Dict[str, Any],
        journal: Optional["ResumeJournal"],
    ):
        self._spec = runner.spawn_spec()
        self._jobs = jobs
        self._config = config
        self._failures = failures
        self._adopt = adopt
        self._stats = stats
        self._journal = journal
        self._context = _mp_context()
        self._chaos = chaos.current()
        self._plane: Optional[Dict[str, Any]] = getattr(
            runner, "plane_handles", None
        )
        self._by_key: Dict[str, "GridCell"] = {}
        for shard in shards:
            for cell in shard.cells:
                self._by_key.setdefault(cell_content_key(cell), cell)
        self._pending: Deque[Tuple[Shard, int]] = deque(
            (shard, 1) for shard in shards
        )
        self._active: List[_Lease] = []
        #: Superseded leases (expired, duplicated, finished): their workers
        #: may linger and deliver late duplicates until shutdown reaps them.
        self._retired: List[_Lease] = []
        self._completed: Set[str] = set()
        self._delivered: Set[str] = set()
        self._causes: Dict[str, List[str]] = {}
        self._exhausted: List[Tuple[Shard, int]] = []
        self._worker_seq = 0
        self._transport: Optional[_ChannelTransport] = None

    # -- main loop ----------------------------------------------------------
    def run(self) -> List[_Chunk]:
        self._transport = _ChannelTransport(self._context)
        try:
            while self._pending or self._active:
                self._fill_slots()
                self._steal_stragglers()
                message = self._transport.poll(_POLL_INTERVAL_S)
                while message is not None:
                    self._handle(message, time.monotonic())
                    message = self._transport.poll(0.0)
                self._check_leases(time.monotonic())
            return self._leftover_chunks()
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        """Reap every worker still alive and close the transport."""
        for lease in self._active + self._retired:
            process = lease.process
            try:
                if process.is_alive():
                    process.terminate()
                    process.join(2.0)
                    if process.is_alive():
                        process.kill()
                process.join(5.0)
            except Exception:
                pass
        self._active = []
        self._retired = []
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    # -- scheduling ---------------------------------------------------------
    def _fill_slots(self) -> None:
        while self._pending and len(self._active) < self._jobs:
            shard, attempt = self._pending.popleft()
            if shard.shard_id in self._completed:
                continue
            self._grant(shard, attempt)

    def _grant(self, shard: Shard, attempt: int, speculative: bool = False) -> None:
        assert self._transport is not None
        self._worker_seq += 1
        worker_id = self._worker_seq
        keys = [cell_content_key(cell) for cell in shard.cells]
        skip = tuple(key for key in keys if key in self._delivered)
        reader, writer = self._transport.open_channel()
        process = self._context.Process(
            target=_shard_worker_main,
            args=(
                self._spec,
                self._config,
                self._chaos,
                self._plane,
                shard,
                attempt,
                worker_id,
                skip,
                writer,
            ),
        )
        process.daemon = True
        process.start()
        try:
            writer.close()
        except Exception:
            pass
        now = time.monotonic()
        self._active.append(
            _Lease(shard, attempt, worker_id, process, now, now, speculative)
        )
        if self._journal is not None:
            self._journal.record_lease(shard.shard_id, worker_id, attempt, keys)
            self._journal.flush()
        if not speculative and chaos.should_fire(
            "steal", shard.shard_id, "duplicate"
        ):
            self._failures.append(
                FailureReport(
                    site="steal",
                    benchmark=shard.benchmark,
                    cell=shard.shard_id,
                    attempts=attempt,
                    causes=("chaos: forced duplicate shard assignment",),
                    recovery="duplicate-delivery",
                    recovered=True,
                )
            )
            self._grant(shard, attempt, speculative=True)

    def _steal_stragglers(self) -> None:
        if self._pending or len(self._active) >= self._jobs:
            return
        now = time.monotonic()
        for lease in list(self._active):
            if len(self._active) >= self._jobs:
                return
            shard_id = lease.shard.shard_id
            if shard_id in self._completed or lease.speculative:
                continue
            if any(
                other is not lease and other.shard.shard_id == shard_id
                for other in self._active
            ):
                continue
            age = now - lease.granted_at
            if age <= self._config.lease_timeout_s:
                continue
            self._failures.append(
                FailureReport(
                    site="steal",
                    benchmark=lease.shard.benchmark,
                    cell=shard_id,
                    attempts=lease.attempt,
                    causes=(
                        f"straggler: no result after {age:.3g}s; "
                        f"speculating a duplicate",
                    ),
                    recovery="work-steal",
                    recovered=True,
                )
            )
            self._grant(lease.shard, lease.attempt, speculative=True)

    # -- message handling ---------------------------------------------------
    def _handle(self, message: Any, now: float) -> None:
        if not isinstance(message, dict):
            raise TransportError(
                f"malformed shard transport message: {message!r}"
            )
        kind = message.get("kind")
        worker = message.get("worker")
        if kind == "heartbeat":
            for lease in self._active:
                if lease.worker_id == worker:
                    lease.last_heartbeat = now
        elif kind == "cell":
            key = message.get("cell")
            if key in self._delivered:
                # First delivery won; a steal or expired-but-alive worker
                # recomputed it (bit-identically).
                self._stats["duplicates"] = self._stats.get("duplicates", 0) + 1
                return
            cell = self._by_key.get(key) if isinstance(key, str) else None
            if cell is None:
                raise TransportError(f"shard result for unknown cell {key!r}")
            try:
                report = report_from_dict(message["report"])
            except Exception as error:
                raise TransportError(
                    f"undecodable shard result for {key}: {error}"
                ) from error
            self._adopt(cell, report)
            self._delivered.add(key)
        elif kind == "done":
            self._handle_done(message)
        elif kind == "fatal":
            lease = self._pop_lease(worker)
            if lease is None:
                return
            if lease.shard.shard_id in self._completed:
                self._retired.append(lease)
                return
            self._settle(
                lease, str(message.get("error") or "shard worker failed"), "shard"
            )
        else:
            raise TransportError(
                f"unknown shard transport message kind {kind!r}"
            )

    def _handle_done(self, message: Dict[str, Any]) -> None:
        shard_id = message.get("shard")
        lease = self._pop_lease(message.get("worker"))
        if lease is not None:
            self._retired.append(lease)
        if not isinstance(shard_id, str) or shard_id in self._completed:
            return
        self._failures.extend(
            _failure_from_dict(payload)
            for payload in message.get("failures", ())
        )
        _merge_stats(self._stats, dict(message.get("stats") or {}))
        error = message.get("error")
        if error is None:
            self._completed.add(shard_id)
            # Retire any duplicate leases still running this shard; their
            # late results dedup against the delivered set.
            for other in [
                entry
                for entry in self._active
                if entry.shard.shard_id == shard_id
            ]:
                self._active.remove(other)
                self._retired.append(other)
        elif lease is not None:
            self._retired.remove(lease)
            self._settle(lease, str(error), "shard")

    # -- liveness -----------------------------------------------------------
    def _check_leases(self, now: float) -> None:
        for lease in list(self._active):
            shard_id = lease.shard.shard_id
            if shard_id in self._completed:
                self._active.remove(lease)
                self._retired.append(lease)
                continue
            process = lease.process
            if not process.is_alive():
                if lease.dead_since is None:
                    # Grace period: its final messages may still be queued.
                    lease.dead_since = now
                    continue
                clean = process.exitcode == 0
                if clean and now - lease.dead_since < _DRAIN_TIMEOUT_S:
                    continue
                self._active.remove(lease)
                cause = (
                    "shard worker exited without a result"
                    if clean
                    else f"shard worker crashed (exit code {process.exitcode})"
                )
                self._settle(lease, cause, "shard")
            elif now - lease.last_heartbeat > self._config.lease_timeout_s:
                # Do not kill the worker: like a partitioned remote host it
                # may still finish, and its delivery must stay harmless.
                self._active.remove(lease)
                self._retired.append(lease)
                self._settle(
                    lease,
                    f"lease expired after {self._config.lease_timeout_s}s "
                    f"without a heartbeat",
                    "lease",
                )

    def _settle(self, lease: _Lease, cause: str, site: str) -> None:
        """A lease failed: hand the shard to a survivor, requeue, or give up."""
        shard = lease.shard
        self._causes.setdefault(shard.shard_id, []).append(cause)
        survivor = next(
            (
                entry
                for entry in self._active
                if entry.shard.shard_id == shard.shard_id
            ),
            None,
        )
        if survivor is not None:
            # Another lease (a speculative copy, or the primary when a
            # speculative copy died) still owns the shard; promote it.
            survivor.speculative = False
            self._failures.append(
                FailureReport(
                    site=site,
                    benchmark=shard.benchmark,
                    cell=shard.shard_id,
                    attempts=lease.attempt,
                    causes=(cause,),
                    recovery="work-steal",
                    recovered=True,
                )
            )
            return
        if lease.attempt <= self._config.retries:
            self._failures.append(
                FailureReport(
                    site=site,
                    benchmark=shard.benchmark,
                    cell=shard.shard_id,
                    attempts=lease.attempt,
                    causes=(cause,),
                    recovery="reassigned",
                    recovered=True,
                )
            )
            self._pending.append((shard, lease.attempt + 1))
        else:
            self._exhausted.append((shard, lease.attempt))

    def _pop_lease(self, worker_id: Any) -> Optional[_Lease]:
        for lease in self._active:
            if lease.worker_id == worker_id:
                self._active.remove(lease)
                return lease
        return None

    def _leftover_chunks(self) -> List[_Chunk]:
        chunks: List[_Chunk] = []
        for shard, attempts in self._exhausted:
            remaining = [
                cell
                for cell in shard.cells
                if cell_content_key(cell) not in self._delivered
            ]
            if not remaining:
                continue
            chunk = _Chunk(shard.benchmark, remaining, attempts=attempts)
            chunk.causes = list(self._causes.get(shard.shard_id, []))
            chunks.append(chunk)
        return chunks


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------
class ShardedBackend(ExecutionBackend):
    """Planner-key sharding with leases, heartbeats, and work-stealing.

    See the module docstring for the failure model.  Shards that exhaust
    their reassignment budget are returned as chunks for the supervisor's
    in-process rung; a transport failure degrades the whole backend to
    :class:`LocalBackend` for the cells not yet delivered.
    """

    name = "sharded"

    def run(
        self,
        runner: Any,
        chunks: List[_Chunk],
        jobs: int,
        config: ResilienceConfig,
        failures: List[FailureReport],
        adopt: Adopt,
        stats: Dict[str, Any],
        journal: Optional["ResumeJournal"] = None,
    ) -> List[_Chunk]:
        cells = [cell for chunk in chunks for cell in chunk.cells]
        if not cells:
            return []
        shards = plan_shards(cells, runner._resolve_layout_policy, config.shards)
        stats["shards"] = stats.get("shards", 0) + len(shards)
        coordinator = _Coordinator(
            runner, shards, max(1, jobs), config, failures, adopt, stats, journal
        )
        try:
            return coordinator.run()
        except TransportError as error:
            coordinator.shutdown()
            failures.append(
                FailureReport(
                    site="transport",
                    benchmark="*",
                    cell="shard transport",
                    attempts=1,
                    causes=tuple(cause_chain(error)),
                    recovery="local-backend",
                    recovered=True,
                )
            )
            remaining = _regroup_by_benchmark(runner, cells)
            if not remaining:
                return []
            return LocalBackend().run(
                runner, remaining, jobs, config, failures, adopt, stats, journal
            )


def _regroup_by_benchmark(runner: Any, cells: Sequence["GridCell"]) -> List[_Chunk]:
    """Benchmark chunks of the cells the sharded run did not deliver."""
    groups: Dict[str, List["GridCell"]] = {}
    for cell in cells:
        if runner.has_report(cell):
            continue
        groups.setdefault(cell.benchmark, []).append(cell)
    return [_Chunk(benchmark, group) for benchmark, group in groups.items()]
