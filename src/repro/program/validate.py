"""Structural validation of finished programs.

:class:`~repro.program.program.Program` already guarantees referential
integrity (unique uids/labels, resolvable targets) during construction;
:func:`validate_program` layers on the semantic rules the rest of the
system relies on and reports *all* violations at once.

Since the introduction of :mod:`repro.analysis` this module is a thin
compatibility wrapper: the checks themselves live in the ``P``-prefixed
rules of :mod:`repro.analysis.rules.program_rules`, and this function
simply runs them and converts error-severity diagnostics into the
historical :class:`ProgramError` (one exception listing every problem).
"""

from __future__ import annotations

from repro.errors import ProgramError
from repro.program.program import Program

__all__ = ["validate_program"]


def validate_program(program: Program) -> None:
    """Raise :class:`ProgramError` listing every structural problem found.

    Equivalent to running the analysis engine's program rules and failing
    on any error-severity diagnostic; use :func:`repro.analysis.analyze_program`
    directly to get the structured diagnostics instead of an exception.
    """
    # Imported lazily: repro.analysis imports repro.program submodules, so a
    # top-level import here would recurse during package initialisation.
    from repro.analysis import Severity, analyze_program

    problems = [
        diagnostic.message
        for diagnostic in analyze_program(program)
        if diagnostic.severity >= Severity.ERROR
    ]
    if problems:
        raise ProgramError(
            f"program {program.name!r} failed validation:\n  - "
            + "\n  - ".join(problems)
        )
