"""Structural validation of finished programs.

:class:`~repro.program.program.Program` already guarantees referential
integrity (unique uids/labels, resolvable targets) during construction;
:func:`validate_program` layers on the semantic rules the rest of the system
relies on and reports *all* violations at once.
"""

from __future__ import annotations

from typing import List

from repro.errors import ProgramError
from repro.program.basic_block import BlockKind
from repro.program.program import Program

__all__ = ["validate_program"]


def validate_program(program: Program) -> None:
    """Raise :class:`ProgramError` listing every structural problem found."""
    problems: List[str] = []

    for function in program.functions.values():
        has_return = any(
            block.kind is BlockKind.RETURN for block in function.blocks
        )
        terminal_jump = any(
            block.kind is BlockKind.JUMP for block in function.blocks
        )
        if not has_return and not terminal_jump:
            problems.append(
                f"function {function.name!r} has no return and no jump; "
                f"execution would run off its end"
            )

        for block in function.blocks:
            if block.kind is BlockKind.CALL and block.callee == function.name:
                # Direct recursion is legal; just sanity-check the callee exists
                pass
            if block.num_instructions == 0:
                problems.append(f"block {function.name}:{block.label} is empty")
            terminator = block.terminator
            if block.kind in (BlockKind.JUMP, BlockKind.CONDJUMP, BlockKind.CALL, BlockKind.RETURN):
                if terminator is None:
                    problems.append(
                        f"block {function.name}:{block.label} claims kind "
                        f"{block.kind.value} but has no terminator"
                    )
            for instruction in block.instructions[:-1]:
                if instruction.is_branch:
                    problems.append(
                        f"block {function.name}:{block.label} has an interior branch"
                    )
                    break

    # Each block may be the fall-through target of at most one predecessor:
    # a block can only physically follow one other block, and the layout
    # engine has no jump-insertion fixup pass.
    fall_in: dict = {}
    for block in program.blocks():
        if block.fall_label is None:
            continue
        if ":" in block.fall_label:
            func, _, label = block.fall_label.partition(":")
        else:
            func, label = block.function, block.fall_label
        try:
            fall_uid = program.uid_of_label(func, label)
        except ProgramError:
            continue  # unresolvable labels were reported at ICFG build time
        if fall_uid in fall_in:
            problems.append(
                f"block uid {fall_uid} is the fall-through target of both uid "
                f"{fall_in[fall_uid]} and uid {block.uid}"
            )
        else:
            fall_in[fall_uid] = block.uid

    # Entry function must be reachable trivially; warn about unreachable code
    # only when a *function entry* is unreachable via the ICFG (dead function).
    reachable = set(program.cfg.reachable_from(program.entry_block.uid))
    for function in program.functions.values():
        if function.entry.uid not in reachable:
            problems.append(
                f"function {function.name!r} is unreachable from the entry point"
            )

    if problems:
        raise ProgramError(
            f"program {program.name!r} failed validation:\n  - "
            + "\n  - ".join(problems)
        )
