"""Interprocedural control-flow graph built over a finished program.

The graph is derived, not stored: blocks carry symbolic successor labels, and
:class:`ControlFlowGraph` resolves them to block uids once, adding call and
return-continuation edges so layout passes can treat the whole binary as one
graph — exactly the ICFG of the paper's Section 3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.errors import ProgramError
from repro.program.basic_block import BasicBlock, BlockKind

__all__ = ["EdgeKind", "Edge", "ControlFlowGraph"]


class EdgeKind(enum.Enum):
    """Classification of ICFG edges.

    ``FALLTHROUGH`` edges are the ones the layout engine must respect when
    chaining (the source block physically precedes the destination);
    ``CALL``/``CONTINUATION`` pairs mark call-site ordering constraints.
    """

    FALLTHROUGH = "fallthrough"
    TAKEN = "taken"
    CALL = "call"
    CONTINUATION = "continuation"  # call site -> the block execution resumes at


@dataclass(frozen=True)
class Edge:
    src: int
    dst: int
    kind: EdgeKind


class ControlFlowGraph:
    """Resolved ICFG with successor/predecessor queries by block uid."""

    def __init__(self, blocks: Mapping[int, BasicBlock], edges: Iterable[Edge]):
        self._blocks = dict(blocks)
        self._edges: Tuple[Edge, ...] = tuple(edges)
        self._successors: Dict[int, List[Edge]] = {uid: [] for uid in self._blocks}
        self._predecessors: Dict[int, List[Edge]] = {uid: [] for uid in self._blocks}
        for edge in self._edges:
            if edge.src not in self._blocks or edge.dst not in self._blocks:
                raise ProgramError(f"edge {edge} references unknown block uid")
            self._successors[edge.src].append(edge)
            self._predecessors[edge.dst].append(edge)

    @property
    def edges(self) -> Tuple[Edge, ...]:
        return self._edges

    def block(self, uid: int) -> BasicBlock:
        return self._blocks[uid]

    def successors(self, uid: int) -> List[Edge]:
        return list(self._successors[uid])

    def predecessors(self, uid: int) -> List[Edge]:
        return list(self._predecessors[uid])

    def fallthrough_successor(self, uid: int) -> int:
        """The uid reached by falling through ``uid``.

        Raises :class:`~repro.errors.ProgramError` when the block has no
        fall-through or continuation edge (jumps and returns); callers that
        merely probe for one should use :meth:`has_fallthrough` first.
        """
        for edge in self._successors[uid]:
            if edge.kind in (EdgeKind.FALLTHROUGH, EdgeKind.CONTINUATION):
                return edge.dst
        block = self._blocks[uid]
        raise ProgramError(
            f"block {block.function}:{block.label} ({block.kind.value}) "
            f"has no fall-through successor"
        )

    def has_fallthrough(self, uid: int) -> bool:
        """Does ``uid`` have a fall-through or continuation edge?"""
        return any(
            edge.kind in (EdgeKind.FALLTHROUGH, EdgeKind.CONTINUATION)
            for edge in self._successors[uid]
        )

    def reachable_from(self, uid: int) -> List[int]:
        """All block uids reachable from ``uid`` following any edge kind."""
        seen = {uid}
        stack = [uid]
        while stack:
            current = stack.pop()
            for edge in self._successors[current]:
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    stack.append(edge.dst)
        return sorted(seen)


def build_icfg(
    blocks_by_uid: Mapping[int, BasicBlock],
    label_to_uid: Mapping[str, int],
    entry_of_function: Mapping[str, int],
) -> ControlFlowGraph:
    """Resolve symbolic successors into a :class:`ControlFlowGraph`.

    ``label_to_uid`` maps fully-qualified block labels (``func:label``) to
    uids; ``entry_of_function`` maps function names to their entry block uid.
    """
    edges: List[Edge] = []
    for uid, block in blocks_by_uid.items():
        if block.kind is BlockKind.FALLTHROUGH:
            edges.append(Edge(uid, _resolve(block, block.fall_label, label_to_uid), EdgeKind.FALLTHROUGH))
        elif block.kind is BlockKind.JUMP:
            edges.append(Edge(uid, _resolve(block, block.taken_label, label_to_uid), EdgeKind.TAKEN))
        elif block.kind is BlockKind.CONDJUMP:
            edges.append(Edge(uid, _resolve(block, block.taken_label, label_to_uid), EdgeKind.TAKEN))
            edges.append(Edge(uid, _resolve(block, block.fall_label, label_to_uid), EdgeKind.FALLTHROUGH))
        elif block.kind is BlockKind.CALL:
            callee = block.callee
            if callee not in entry_of_function:
                raise ProgramError(
                    f"block {block.function}:{block.label} calls unknown function {callee!r}"
                )
            edges.append(Edge(uid, entry_of_function[callee], EdgeKind.CALL))
            edges.append(Edge(uid, _resolve(block, block.fall_label, label_to_uid), EdgeKind.CONTINUATION))
        elif block.kind is BlockKind.RETURN:
            pass  # dynamic successor via the call stack
        else:  # pragma: no cover - exhaustive over BlockKind
            raise ProgramError(f"unhandled block kind {block.kind!r}")
    return ControlFlowGraph(blocks_by_uid, edges)


def _resolve(block: BasicBlock, label: str, label_to_uid: Mapping[str, int]) -> int:
    if label is None:
        raise ProgramError(
            f"block {block.function}:{block.label} ({block.kind.value}) lacks a successor label"
        )
    qualified = label if ":" in label else f"{block.function}:{label}"
    if qualified not in label_to_uid:
        raise ProgramError(
            f"block {block.function}:{block.label} targets unknown label {label!r}"
        )
    return label_to_uid[qualified]
