"""Basic blocks: straight-line instruction runs with one control-flow exit."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.isa.instructions import Instruction, INSTRUCTION_SIZE

__all__ = ["BasicBlock", "BlockKind"]


class BlockKind(enum.Enum):
    """How a block transfers control when it finishes executing.

    The kind is derived from the block's terminating instruction and decides
    which successor fields are meaningful:

    * ``FALLTHROUGH`` — no terminator; control continues at ``fall_label``.
    * ``JUMP``        — unconditional branch to ``taken_label``.
    * ``CONDJUMP``    — conditional branch: ``taken_label`` or ``fall_label``.
    * ``CALL``        — ``bl``: enters ``callee`` then resumes at ``fall_label``.
    * ``RETURN``      — ``ret``: pops the dynamic call stack.
    """

    FALLTHROUGH = "fallthrough"
    JUMP = "jump"
    CONDJUMP = "condjump"
    CALL = "call"
    RETURN = "return"


@dataclass(frozen=True)
class BasicBlock:
    """An immutable basic block within a function.

    ``uid`` is unique across the whole program and is the identity used by
    profiles, traces, and layouts; labels are only for human consumption and
    branch resolution.
    """

    uid: int
    label: str
    function: str
    instructions: Tuple[Instruction, ...]
    kind: BlockKind
    taken_label: Optional[str] = None
    fall_label: Optional[str] = None
    callee: Optional[str] = None  # callee *function* name for CALL blocks

    @property
    def num_instructions(self) -> int:
        return len(self.instructions)

    @property
    def size_bytes(self) -> int:
        return len(self.instructions) * INSTRUCTION_SIZE

    @property
    def terminator(self) -> Optional[Instruction]:
        """The control-flow instruction ending the block, if any."""
        if self.instructions and self.instructions[-1].is_branch:
            return self.instructions[-1]
        return None

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return (
            f"<block {self.function}:{self.label} uid={self.uid} "
            f"{self.num_instructions} instrs {self.kind.value}>"
        )
