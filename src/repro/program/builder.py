"""Fluent construction of programs.

Two entry points:

* :class:`ProgramBuilder` — programmatic construction, used heavily by the
  synthetic workload generator.  Blocks are declared in textual order within
  each function; fall-through successors default to the next declared block,
  exactly like assembly source.
* :func:`function_from_assembly` — carve an assembled instruction stream
  into basic blocks (leaders at labels and after branches) and add it as a
  function.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ProgramError
from repro.isa.assembler import AssemblyUnit, assemble
from repro.isa.instructions import Condition, Instruction, Opcode
from repro.isa.registers import Register
from repro.program.basic_block import BasicBlock, BlockKind
from repro.program.function import Function
from repro.program.program import Program

__all__ = ["ProgramBuilder", "FunctionBuilder", "function_from_assembly", "filler_body"]

#: Rotating pattern of ALU instructions used for synthetic block bodies.
_ALU_PATTERN: Tuple[Instruction, ...] = (
    Instruction(Opcode.ADD, rd=Register.R1, rn=Register.R2, rm=Register.R3),
    Instruction(Opcode.SUB, rd=Register.R2, rn=Register.R1, rm=Register.R4),
    Instruction(Opcode.MOV, rd=Register.R5, imm=1),
    Instruction(Opcode.MUL, rd=Register.R6, rn=Register.R5, rm=Register.R2),
    Instruction(Opcode.ORR, rd=Register.R7, rn=Register.R6, rm=Register.R1),
    Instruction(Opcode.LSR, rd=Register.R8, rn=Register.R7, imm=2),
    Instruction(Opcode.EOR, rd=Register.R3, rn=Register.R8, rm=Register.R1),
    Instruction(Opcode.AND, rd=Register.R9, rn=Register.R3, rm=Register.R7),
)

#: Alternating loads and stores for the memory share of a block body.
_MEM_PATTERN: Tuple[Instruction, ...] = (
    Instruction(Opcode.LDR, rd=Register.R4, rn=Register.SP, imm=8),
    Instruction(Opcode.STR, rd=Register.R6, rn=Register.SP, imm=12),
    Instruction(Opcode.LDR, rd=Register.R10, rn=Register.R1, imm=0),
    Instruction(Opcode.STRB, rd=Register.R7, rn=Register.R2, imm=4),
)


class BodyGenerator:
    """Stateful generator of block bodies with an exact long-run mix.

    ``mem_density`` sets the fraction of loads/stores, deterministically
    interleaved — crypto kernels run register-resident (low density), image
    and dictionary codes stream memory (high density).  The mix feeds the
    processor energy model's per-instruction activity estimate.  The credit
    accumulator persists across blocks so even densities far below one
    instruction per block converge to the requested fraction.
    """

    def __init__(self, mem_density: float = 0.25):
        if not 0.0 <= mem_density <= 1.0:
            raise ProgramError(f"mem_density must be in [0, 1], got {mem_density}")
        self.mem_density = mem_density
        self._alu = itertools.cycle(_ALU_PATTERN)
        self._mem = itertools.cycle(_MEM_PATTERN)
        self._credit = 0.5  # start mid-window so short programs round fairly

    def body(self, num_instructions: int) -> Tuple[Instruction, ...]:
        if num_instructions < 0:
            raise ProgramError(
                f"block body size must be >= 0, got {num_instructions}"
            )
        instructions = []
        for _ in range(num_instructions):
            self._credit += self.mem_density
            if self._credit >= 1.0:
                self._credit -= 1.0
                instructions.append(next(self._mem))
            else:
                instructions.append(next(self._alu))
        return tuple(instructions)


def filler_body(
    num_instructions: int, mem_density: float = 0.25
) -> Tuple[Instruction, ...]:
    """One-shot convenience over :class:`BodyGenerator`."""
    return BodyGenerator(mem_density).body(num_instructions)


class _PendingBlock:
    """Mutable block record inside a :class:`FunctionBuilder`."""

    __slots__ = ("label", "instructions", "kind", "taken", "fall", "callee")

    def __init__(
        self,
        label: str,
        instructions: Tuple[Instruction, ...],
        kind: BlockKind,
        taken: Optional[str],
        fall: Optional[str],
        callee: Optional[str],
    ):
        self.label = label
        self.instructions = instructions
        self.kind = kind
        self.taken = taken
        self.fall = fall
        self.callee = callee


class FunctionBuilder:
    """Declares blocks of one function in textual order.

    ``mem_density`` is the load/store fraction used for generated block
    bodies (see :func:`filler_body`).
    """

    def __init__(
        self, program_builder: "ProgramBuilder", name: str, mem_density: float = 0.25
    ):
        self._program_builder = program_builder
        self.name = name
        self.mem_density = mem_density
        self._body_generator = BodyGenerator(mem_density)
        self._pending: List[_PendingBlock] = []
        self._labels: Dict[str, int] = {}

    # -- block declaration -------------------------------------------------
    def block(
        self,
        label: str,
        size: int = 1,
        *,
        jump: Optional[str] = None,
        branch: Optional[str] = None,
        condition: Condition = Condition.NE,
        call: Optional[str] = None,
        ret: bool = False,
        fall: Optional[str] = None,
    ) -> "FunctionBuilder":
        """Add a block of ``size`` filler instructions plus its terminator.

        Exactly one of ``jump`` (unconditional branch target label),
        ``branch`` (conditional branch target label), ``call`` (callee
        function name), or ``ret`` may be given; none means fall-through.
        ``fall`` overrides the default fall-through (the next declared
        block) for ``branch``/``call``/plain blocks.
        """
        chosen = [x for x in (jump, branch, call, ret or None) if x]
        if len(chosen) > 1:
            raise ProgramError(
                f"block {self.name}:{label}: jump/branch/call/ret are mutually exclusive"
            )
        body = self._body_generator.body(size)
        if jump is not None:
            instructions = body + (Instruction(Opcode.B, target=jump),)
            pending = _PendingBlock(label, instructions, BlockKind.JUMP, jump, None, None)
        elif branch is not None:
            if condition is Condition.AL:
                raise ProgramError(
                    f"block {self.name}:{label}: conditional branch needs a real condition"
                )
            instructions = body + (
                Instruction(Opcode.B, condition=condition, target=branch),
            )
            pending = _PendingBlock(label, instructions, BlockKind.CONDJUMP, branch, fall, None)
        elif call is not None:
            instructions = body + (Instruction(Opcode.BL, target=call),)
            pending = _PendingBlock(label, instructions, BlockKind.CALL, None, fall, call)
        elif ret:
            instructions = body + (Instruction(Opcode.RET),)
            pending = _PendingBlock(label, instructions, BlockKind.RETURN, None, None, None)
        else:
            if not body:
                raise ProgramError(
                    f"block {self.name}:{label}: a fall-through block needs a body"
                )
            pending = _PendingBlock(label, body, BlockKind.FALLTHROUGH, None, fall, None)
        self._append(pending)
        return self

    def raw_block(
        self,
        label: str,
        instructions: Sequence[Instruction],
        *,
        taken: Optional[str] = None,
        fall: Optional[str] = None,
        callee: Optional[str] = None,
    ) -> "FunctionBuilder":
        """Add a block with explicit instructions; the kind is inferred from
        the final instruction (used by :func:`function_from_assembly`)."""
        instructions = tuple(instructions)
        kind = _infer_kind(self.name, label, instructions)
        if kind is BlockKind.CALL and callee is None:
            callee = instructions[-1].target
        if kind in (BlockKind.JUMP, BlockKind.CONDJUMP) and taken is None:
            taken = instructions[-1].target
        pending = _PendingBlock(label, instructions, kind, taken, fall, callee)
        self._append(pending)
        return self

    def _append(self, pending: _PendingBlock) -> None:
        if pending.label in self._labels:
            raise ProgramError(f"duplicate block label {self.name}:{pending.label}")
        if not pending.instructions:
            raise ProgramError(f"block {self.name}:{pending.label} is empty")
        self._labels[pending.label] = len(self._pending)
        self._pending.append(pending)

    # -- finalisation --------------------------------------------------------
    def _finish(self, uid_counter: "itertools.count") -> Function:
        if not self._pending:
            raise ProgramError(f"function {self.name!r} has no blocks")
        blocks: List[BasicBlock] = []
        for index, pending in enumerate(self._pending):
            fall = pending.fall
            needs_fall = pending.kind in (
                BlockKind.FALLTHROUGH,
                BlockKind.CONDJUMP,
                BlockKind.CALL,
            )
            if needs_fall and fall is None:
                if index + 1 >= len(self._pending):
                    raise ProgramError(
                        f"block {self.name}:{pending.label} falls through past the "
                        f"end of function {self.name!r}"
                    )
                fall = self._pending[index + 1].label
            blocks.append(
                BasicBlock(
                    uid=next(uid_counter),
                    label=pending.label,
                    function=self.name,
                    instructions=pending.instructions,
                    kind=pending.kind,
                    taken_label=pending.taken,
                    fall_label=fall if needs_fall else None,
                    callee=pending.callee,
                )
            )
        return Function(self.name, tuple(blocks))


class ProgramBuilder:
    """Builds a validated :class:`Program` out of function declarations."""

    def __init__(self, name: str):
        self.name = name
        self._functions: List[FunctionBuilder] = []
        self._by_name: Dict[str, FunctionBuilder] = {}

    def function(self, name: str, mem_density: float = 0.25) -> FunctionBuilder:
        """Open (or reopen) the function called ``name``.

        ``mem_density`` only applies when the function is first created.
        """
        if name in self._by_name:
            return self._by_name[name]
        builder = FunctionBuilder(self, name, mem_density)
        self._functions.append(builder)
        self._by_name[name] = builder
        return builder

    def build(self, entry: Optional[str] = None) -> Program:
        """Finalise into an immutable, validated :class:`Program`.

        ``entry`` defaults to the first declared function.
        """
        if not self._functions:
            raise ProgramError(f"program {self.name!r} declares no functions")
        uid_counter = itertools.count()
        functions = tuple(fb._finish(uid_counter) for fb in self._functions)
        entry = entry if entry is not None else functions[0].name
        program = Program(self.name, functions, entry)
        from repro.program.validate import validate_program

        validate_program(program)
        return program


def _infer_kind(function: str, label: str, instructions: Tuple[Instruction, ...]) -> BlockKind:
    last = instructions[-1]
    for instruction in instructions[:-1]:
        if instruction.is_branch:
            raise ProgramError(
                f"block {function}:{label} has a control-flow instruction "
                f"before its end"
            )
    if last.opcode is Opcode.B:
        return BlockKind.CONDJUMP if last.is_conditional else BlockKind.JUMP
    if last.opcode is Opcode.BL:
        if last.is_conditional:
            raise ProgramError(f"block {function}:{label}: conditional calls unsupported")
        return BlockKind.CALL
    if last.opcode is Opcode.RET:
        return BlockKind.RETURN
    return BlockKind.FALLTHROUGH


def function_from_assembly(
    builder: ProgramBuilder, name: str, source: str
) -> FunctionBuilder:
    """Assemble ``source`` and add it to ``builder`` as function ``name``.

    Basic-block leaders are: the first instruction, every label target, and
    every instruction following a branch.  ``bl`` targets are treated as
    callee *function* names (interprocedural), all other branch targets must
    be labels defined in the same source text.
    """
    unit: AssemblyUnit = assemble(source)
    if not unit.instructions:
        raise ProgramError(f"function {name!r}: empty assembly source")

    leaders = {0}
    for index in unit.labels.values():
        if index < len(unit.instructions):
            leaders.add(index)
    for index, instruction in enumerate(unit.instructions):
        if instruction.is_branch and index + 1 < len(unit.instructions):
            leaders.add(index + 1)
    ordered_leaders = sorted(leaders)

    index_to_label: Dict[int, str] = {}
    for label, index in unit.labels.items():
        index_to_label.setdefault(index, label)
    for serial, leader in enumerate(ordered_leaders):
        index_to_label.setdefault(leader, f".bb{serial}")

    function_builder = builder.function(name)
    for pos, leader in enumerate(ordered_leaders):
        end = ordered_leaders[pos + 1] if pos + 1 < len(ordered_leaders) else len(unit.instructions)
        instructions = unit.instructions[leader:end]
        last = instructions[-1]
        taken = None
        if last.opcode is Opcode.B:
            if last.target not in unit.labels:
                raise ProgramError(
                    f"function {name!r}: branch to unknown label {last.target!r}"
                )
            taken = index_to_label[unit.labels[last.target]]
        function_builder.raw_block(index_to_label[leader], instructions, taken=taken)
    return function_builder
