"""Functions: named, single-entry groups of basic blocks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.program.basic_block import BasicBlock

__all__ = ["Function"]


@dataclass(frozen=True)
class Function:
    """A function is an ordered tuple of blocks; the first is the entry.

    The block order records the *original* (pre-layout) textual order, which
    defines fall-through adjacency and is the baseline code layout.
    """

    name: str
    blocks: Tuple[BasicBlock, ...]

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    @property
    def num_instructions(self) -> int:
        return sum(block.num_instructions for block in self.blocks)

    @property
    def size_bytes(self) -> int:
        return sum(block.size_bytes for block in self.blocks)

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return f"<function {self.name}: {len(self.blocks)} blocks>"
