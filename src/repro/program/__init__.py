"""Link-time program representation.

This package plays the role DIABLO plays in the paper: it holds a whole
program as an interprocedural control-flow graph (ICFG) of basic blocks,
ready to be profiled, reordered, and laid out at link time.

Construction goes through :class:`~repro.program.builder.ProgramBuilder`,
which enforces the structural rules (every block belongs to a function, every
branch target resolves, conditional branches have a fall-through, functions
have a single entry) and produces an immutable :class:`Program`.
"""

from repro.program.basic_block import BasicBlock, BlockKind
from repro.program.cfg import Edge, EdgeKind, ControlFlowGraph
from repro.program.function import Function
from repro.program.program import Program
from repro.program.builder import ProgramBuilder, function_from_assembly
from repro.program.validate import validate_program

__all__ = [
    "BasicBlock",
    "BlockKind",
    "Edge",
    "EdgeKind",
    "ControlFlowGraph",
    "Function",
    "Program",
    "ProgramBuilder",
    "function_from_assembly",
    "validate_program",
]
