"""The whole-program container handed to profiling, layout, and simulation."""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import ProgramError
from repro.program.basic_block import BasicBlock
from repro.program.cfg import ControlFlowGraph, build_icfg
from repro.program.function import Function

__all__ = ["Program"]


class Program:
    """An immutable linked program: functions, blocks, and their ICFG.

    Instances are produced by :class:`~repro.program.builder.ProgramBuilder`;
    the constructor validates cross-references and materialises the ICFG.
    """

    def __init__(self, name: str, functions: Tuple[Function, ...], entry_function: str):
        if not functions:
            raise ProgramError(f"program {name!r} has no functions")
        self._name = name
        self._functions: Dict[str, Function] = {}
        for function in functions:
            if function.name in self._functions:
                raise ProgramError(f"duplicate function name {function.name!r}")
            if not function.blocks:
                raise ProgramError(f"function {function.name!r} has no blocks")
            self._functions[function.name] = function
        if entry_function not in self._functions:
            raise ProgramError(f"entry function {entry_function!r} not defined")
        self._entry_function = entry_function

        self._blocks_by_uid: Dict[int, BasicBlock] = {}
        self._label_to_uid: Dict[str, int] = {}
        for function in functions:
            for block in function.blocks:
                if block.uid in self._blocks_by_uid:
                    raise ProgramError(f"duplicate block uid {block.uid}")
                self._blocks_by_uid[block.uid] = block
                qualified = f"{block.function}:{block.label}"
                if qualified in self._label_to_uid:
                    raise ProgramError(f"duplicate block label {qualified!r}")
                self._label_to_uid[qualified] = block.uid

        entry_of_function = {
            function.name: function.entry.uid for function in functions
        }
        self._cfg = build_icfg(self._blocks_by_uid, self._label_to_uid, entry_of_function)

    # ------------------------------------------------------------------
    # Identity and containers
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def functions(self) -> Mapping[str, Function]:
        return dict(self._functions)

    @property
    def entry_function(self) -> Function:
        return self._functions[self._entry_function]

    @property
    def entry_block(self) -> BasicBlock:
        return self.entry_function.entry

    @property
    def cfg(self) -> ControlFlowGraph:
        return self._cfg

    # ------------------------------------------------------------------
    # Block access
    # ------------------------------------------------------------------
    def blocks(self) -> Iterator[BasicBlock]:
        """All blocks in original (baseline layout) order."""
        for function in self._functions.values():
            yield from function.blocks

    def block_by_uid(self, uid: int) -> BasicBlock:
        try:
            return self._blocks_by_uid[uid]
        except KeyError:
            raise ProgramError(f"no block with uid {uid} in program {self._name!r}") from None

    def block_by_label(self, function: str, label: str) -> BasicBlock:
        qualified = f"{function}:{label}"
        try:
            return self._blocks_by_uid[self._label_to_uid[qualified]]
        except KeyError:
            raise ProgramError(f"no block {qualified!r} in program {self._name!r}") from None

    def uid_of_label(self, function: str, label: str) -> int:
        return self.block_by_label(function, label).uid

    def entry_uid_of(self, function: str) -> int:
        if function not in self._functions:
            raise ProgramError(f"no function {function!r} in program {self._name!r}")
        return self._functions[function].entry.uid

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return len(self._blocks_by_uid)

    @property
    def num_instructions(self) -> int:
        return sum(block.num_instructions for block in self._blocks_by_uid.values())

    @property
    def size_bytes(self) -> int:
        return sum(block.size_bytes for block in self._blocks_by_uid.values())

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return (
            f"<program {self._name!r}: {len(self._functions)} functions, "
            f"{self.num_blocks} blocks, {self.size_bytes} bytes>"
        )
