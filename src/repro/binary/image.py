"""Emission of executable images from a program plus a layout."""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import LayoutError
from repro.isa.disassembler import format_instruction
from repro.isa.encoding import decode_instruction, encode_instruction
from repro.isa.instructions import INSTRUCTION_SIZE, Instruction, Opcode
from repro.layout.layouts import Layout
from repro.program.program import Program

__all__ = ["BinaryImage", "emit_image", "load_image"]

#: Encoded NOP used to pad any alignment gaps in an image.
_NOP_WORD = encode_instruction(Instruction(Opcode.NOP))


@dataclass(frozen=True)
class BinaryImage:
    """An emitted binary: raw bytes plus the symbol table used to link it."""

    program_name: str
    base_address: int
    data: bytes
    symbols: Dict[str, int]

    @property
    def size_bytes(self) -> int:
        return len(self.data)

    @property
    def num_words(self) -> int:
        return len(self.data) // 4

    def word_at(self, address: int) -> int:
        """The 32-bit instruction word at ``address`` (little endian)."""
        offset = address - self.base_address
        if not 0 <= offset <= len(self.data) - 4 or offset % 4:
            raise LayoutError(
                f"address {address:#x} outside image "
                f"[{self.base_address:#x}, {self.base_address + len(self.data):#x})"
            )
        return struct.unpack_from("<I", self.data, offset)[0]

    def disassemble(self) -> str:
        """Instruction listing of the whole image (offsets resolved)."""
        lines = []
        for index, instruction in enumerate(load_image(self.data, self.base_address)):
            address = self.base_address + index * 4
            text = format_instruction(instruction)
            if instruction.opcode in (Opcode.B, Opcode.BL):
                target = address + instruction.imm * INSTRUCTION_SIZE
                text = f"{instruction.mnemonic} {target:#x}"
            lines.append(f"{address:#010x}:  {text}")
        return "\n".join(lines)


def _symbols_for_function(
    program: Program, layout: Layout, function_name: str
) -> Dict[str, int]:
    """Resolvable names inside one function: its labels + all functions."""
    symbols: Dict[str, int] = {}
    for name, function in program.functions.items():
        symbols[name] = layout.address_of(function.entry.uid)
    for block in program.functions[function_name].blocks:
        symbols[block.label] = layout.address_of(block.uid)
    return symbols


def emit_image(program: Program, layout: Layout) -> BinaryImage:
    """Encode every block at its layout address into one contiguous image.

    Branches resolve against the emitting function's labels, calls against
    function names — matching the assembler's symbol scoping.  Gaps in the
    layout (none are produced by the shipped linkers, but layouts are not
    required to be gap-free) are padded with NOPs.
    """
    base = min(layout.address_of(uid) for uid in layout.block_order)
    words: List[int] = [_NOP_WORD] * ((layout.end_address - base) // 4)

    for function in program.functions.values():
        symbols = _symbols_for_function(program, layout, function.name)
        for block in function.blocks:
            address = layout.address_of(block.uid)
            for instruction in block.instructions:
                words[(address - base) // 4] = encode_instruction(
                    instruction, address=address, symbols=symbols
                )
                address += INSTRUCTION_SIZE

    data = struct.pack(f"<{len(words)}I", *words)
    symbols = layout.symbol_table(program)
    return BinaryImage(
        program_name=program.name, base_address=base, data=data, symbols=symbols
    )


def load_image(data: bytes, base_address: int = 0) -> Tuple[Instruction, ...]:
    """Decode an image back into instructions (branches as word offsets)."""
    if len(data) % 4:
        raise LayoutError(f"image length {len(data)} is not a whole word count")
    words = struct.unpack(f"<{len(data) // 4}I", data)
    return tuple(decode_instruction(word) for word in words)
