"""Binary image emission and loading.

The layout engine decides *where* code goes; this package actually emits
the machine code: every block's instructions are encoded at their assigned
addresses with branch targets resolved through the layout's symbol table —
the final step a link-time rewriter like DIABLO performs.  Images round-trip
back into instruction listings, which is how the tests prove the encoding,
the layout, and the CFG agree with each other.
"""

from repro.binary.image import BinaryImage, emit_image, load_image

__all__ = ["BinaryImage", "emit_image", "load_image"]
