"""Exception hierarchy for the way-placement reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Subclasses mark
the subsystem that detected the problem.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "EncodingError",
    "AssemblerError",
    "ProgramError",
    "LayoutError",
    "CacheConfigError",
    "TraceError",
    "ProfileError",
    "SchemeError",
    "EnergyModelError",
    "WorkloadError",
    "ExperimentError",
    "AnalysisError",
    "SanitizerError",
    "ResilienceError",
    "CellFailure",
    "RetriesExhausted",
    "TransportError",
]


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class EncodingError(ReproError):
    """An instruction could not be encoded or decoded."""


class AssemblerError(ReproError):
    """Assembly source text was malformed."""


class ProgramError(ReproError):
    """A program, function, or CFG is structurally invalid."""


class LayoutError(ReproError):
    """A code layout is inconsistent (overlaps, misalignment, missing blocks)."""


class CacheConfigError(ReproError):
    """A cache or TLB geometry is invalid (non-power-of-two, too small, ...)."""


class TraceError(ReproError):
    """Trace generation failed (unreachable block, bad step budget, ...)."""


class ProfileError(ReproError):
    """Profile data is missing, malformed, or inconsistent with the program."""


class SchemeError(ReproError):
    """A fetch scheme was configured or driven incorrectly."""


class EnergyModelError(ReproError):
    """Energy-model parameters are invalid."""


class WorkloadError(ReproError):
    """A synthetic workload specification is invalid."""


class ExperimentError(ReproError):
    """An experiment grid or figure request is invalid."""


class AnalysisError(ReproError):
    """Static analysis failed or (in strict mode) found error diagnostics.

    When raised by a strict pre-flight the offending diagnostics are
    attached as the ``diagnostics`` attribute.
    """

    def __init__(self, message: str, diagnostics=None):
        super().__init__(message)
        self.diagnostics = list(diagnostics) if diagnostics is not None else []


class SanitizerError(ReproError):
    """The runtime sanitizer caught a model-invariant violation.

    The concrete :class:`~repro.verify.sanitizer.SanitizerViolation`
    records are attached as the ``violations`` attribute.
    """

    def __init__(self, message: str, violations=None):
        super().__init__(message)
        self.violations = list(violations) if violations is not None else []


class ResilienceError(ReproError):
    """Supervised execution was configured or driven incorrectly."""


class TransportError(ResilienceError):
    """The sharded backend's result-queue transport failed.

    Raised by :mod:`repro.resilience.sharded` when the coordinator can no
    longer exchange messages with its shard workers (a broken queue, an
    injected ``transport`` chaos fault).  The backend catches it and
    degrades the whole grid to the local backend, so a transport outage
    never poisons a sweep.
    """


class RetriesExhausted(ResilienceError):
    """One grid cell kept failing after every retry and fallback.

    Raised with the last underlying exception chained as ``__cause__``;
    the number of attempts made is attached as the ``attempts`` attribute.
    """

    def __init__(self, message: str, attempts: int = 0):
        super().__init__(message)
        self.attempts = attempts


class CellFailure(ResilienceError):
    """A supervised grid finished with unrecovered cell failures.

    Every completed cell's report was still adopted into the runner's memo
    before this was raised.  The structured
    :class:`~repro.resilience.policy.FailureReport` records (recovered and
    unrecovered) are attached as the ``failures`` attribute; the first
    underlying exception is chained as ``__cause__``.
    """

    def __init__(self, message: str, failures=None):
        super().__init__(message)
        self.failures = list(failures) if failures is not None else []
