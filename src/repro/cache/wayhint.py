"""The way-hint bit: one bit of state, read before the cache access.

The I-TLB is read in parallel with the instruction cache, so the
way-placement bit arrives too late to steer the *current* access.  The paper
adds a single way-hint bit recording whether the *previous* access was to
the way-placement area and uses it as the prediction for the current one.

Misprediction outcomes (paper Section 4.1):

* predicted non-WPA, actually WPA  -> full search anyway; a lost saving.
* predicted WPA, actually non-WPA -> the one-way access cannot be trusted;
  a second, all-ways access follows with a one-cycle penalty.
"""

from __future__ import annotations

__all__ = ["WayHintBit"]


class WayHintBit:
    """Single-bit last-value predictor of 'access is in the WPA'."""

    def __init__(self, initial: bool = False):
        self._bit = bool(initial)
        self.predictions = 0
        self.false_positives = 0  # said WPA, was not (costs a second access)
        self.false_negatives = 0  # said non-WPA, was WPA (lost saving)

    @property
    def bit(self) -> bool:
        """The current hint value, without counting a prediction."""
        return self._bit

    def predict(self) -> bool:
        self.predictions += 1
        return self._bit

    def update(self, actual_wpa: bool) -> None:
        if self._bit and not actual_wpa:
            self.false_positives += 1
        elif not self._bit and actual_wpa:
            self.false_negatives += 1
        self._bit = actual_wpa

    @property
    def accuracy(self) -> float:
        if self.predictions == 0:
            return 1.0
        wrong = self.false_positives + self.false_negatives
        return 1.0 - wrong / self.predictions
