"""Activity counters: what a fetch scheme did, ready for energy pricing.

Schemes simulate the fetch stream and record *physical activity* (match
lines precharged, tags compared, lines filled, TLB probes...).  The energy
model prices this activity afterwards; the timing model turns the same
counters into cycles.  Keeping the three concerns separate makes each
independently testable.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["FetchCounters"]


@dataclass
class FetchCounters:
    """Integer activity counters accumulated over one simulated run."""

    # Stream structure
    fetches: int = 0  # instruction fetches issued
    line_events: int = 0  # line-transition events processed
    same_line_fetches: int = 0  # fetches served without any tag activity

    # Tag-array activity
    full_searches: int = 0  # all-way CAM searches performed
    single_way_searches: int = 0  # one-way (way-placement / predicted) checks
    link_followed: int = 0  # transitions resolved by a valid memo link
    ways_precharged: int = 0  # total match lines precharged (= tags compared)

    # Outcomes
    hits: int = 0  # line transitions that found the line resident
    misses: int = 0
    fills: int = 0
    wp_fills: int = 0  # fills forced into the mandated way
    evictions: int = 0  # fills that displaced a valid line

    # Way-hint / way-prediction corrections
    second_accesses: int = 0  # corrective all-way accesses after a wrong guess
    hint_false_positives: int = 0
    hint_false_negatives: int = 0

    # Way-memoization bookkeeping
    link_writes: int = 0

    # I-TLB
    itlb_accesses: int = 0
    itlb_misses: int = 0

    # Filter cache (L0) — only used by the filter-cache scheme
    l0_accesses: int = 0
    l0_hits: int = 0
    l0_misses: int = 0

    # Scratchpad memory — only used by the scratchpad scheme
    spm_accesses: int = 0

    # Extra latency beyond the base pipeline (second accesses, L0 misses)
    extra_access_cycles: int = 0

    # ------------------------------------------------------------------
    @property
    def miss_rate(self) -> float:
        """Misses per line-transition lookup."""
        lookups = self.hits + self.misses
        return self.misses / lookups if lookups else 0.0

    @property
    def fetch_miss_rate(self) -> float:
        """Misses per instruction fetch (the classic cache miss rate)."""
        return self.misses / self.fetches if self.fetches else 0.0

    @property
    def mean_ways_per_fetch(self) -> float:
        """Average match lines precharged per instruction fetch."""
        return self.ways_precharged / self.fetches if self.fetches else 0.0

    def merge(self, other: "FetchCounters") -> "FetchCounters":
        """Field-wise sum (for aggregating runs)."""
        merged = FetchCounters()
        for field in fields(FetchCounters):
            setattr(
                merged,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )
        return merged

    def validate(self) -> None:
        """Cross-field sanity checks; raises ``ValueError`` on violation."""
        for field in fields(FetchCounters):
            value = getattr(self, field.name)
            if value < 0:
                raise ValueError(f"counter {field.name} is negative: {value}")
        if self.hits + self.misses > self.line_events + self.second_accesses:
            raise ValueError(
                "more lookup outcomes than line events: "
                f"{self.hits}+{self.misses} > {self.line_events}"
            )
        if self.fills < self.misses:
            raise ValueError(f"{self.misses} misses but only {self.fills} fills")
        if self.wp_fills > self.fills:
            raise ValueError("wp_fills exceeds total fills")
        if self.evictions > self.fills:
            raise ValueError("evictions exceed fills")
