"""Replacement policies for set-associative caches.

XScale uses round-robin replacement, which is the default throughout the
reproduction; random and LRU exist for ablations and for the filter cache.
Policies are per-cache objects holding per-set state; ``victim`` proposes the
way to replace, ``on_fill``/``on_access`` keep the state current.
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import CacheConfigError

__all__ = [
    "ReplacementPolicy",
    "RoundRobinReplacement",
    "RandomReplacement",
    "LruReplacement",
    "make_policy",
]


class ReplacementPolicy:
    """Interface for per-set replacement decisions."""

    def __init__(self, num_sets: int, ways: int):
        if num_sets < 1 or ways < 1:
            raise CacheConfigError(
                f"replacement policy needs positive geometry, got "
                f"{num_sets} sets x {ways} ways"
            )
        self.num_sets = num_sets
        self.ways = ways

    def victim(self, set_index: int) -> int:
        """Way to evict next in ``set_index``."""
        raise NotImplementedError

    def on_fill(self, set_index: int, way: int) -> None:
        """A line was filled into (set, way)."""

    def on_access(self, set_index: int, way: int) -> None:
        """A hit touched (set, way)."""


class RoundRobinReplacement(ReplacementPolicy):
    """XScale's policy: a rotating pointer per set.

    Way-placed fills land in a mandated way *without* consulting the policy,
    so the pointer only advances when the policy actually chose the victim.
    """

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        self._pointer: List[int] = [0] * num_sets

    def victim(self, set_index: int) -> int:
        way = self._pointer[set_index]
        self._pointer[set_index] = (way + 1) % self.ways
        return way


class RandomReplacement(ReplacementPolicy):
    """Uniformly random victim, seeded for reproducibility."""

    def __init__(self, num_sets: int, ways: int, seed: int = 0):
        super().__init__(num_sets, ways)
        self._rng = random.Random(seed)

    def victim(self, set_index: int) -> int:
        return self._rng.randrange(self.ways)


class LruReplacement(ReplacementPolicy):
    """True LRU, tracked with per-set recency stacks."""

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        self._stacks: List[List[int]] = [list(range(ways)) for _ in range(num_sets)]

    def victim(self, set_index: int) -> int:
        return self._stacks[set_index][0]  # least recently used at the front

    def _touch(self, set_index: int, way: int) -> None:
        stack = self._stacks[set_index]
        stack.remove(way)
        stack.append(way)

    def on_fill(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def on_access(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)


def make_policy(name: str, num_sets: int, ways: int, seed: int = 0) -> ReplacementPolicy:
    """Factory by name: ``round-robin``, ``random``, or ``lru``."""
    name = name.lower()
    if name in ("round-robin", "roundrobin", "rr"):
        return RoundRobinReplacement(num_sets, ways)
    if name == "random":
        return RandomReplacement(num_sets, ways, seed)
    if name == "lru":
        return LruReplacement(num_sets, ways)
    raise CacheConfigError(f"unknown replacement policy {name!r}")
