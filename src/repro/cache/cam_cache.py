"""Functional model of the XScale-style CAM-organised instruction cache.

Each set is a fully-associative CAM sub-bank.  The model tracks tags,
validity, and a per-line *generation* counter (bumped on every fill) that
gives each resident line a unique identity ``(set, way, generation)`` —
the way-memoization scheme uses generations to decide link validity exactly
(a link is stale as soon as either endpoint line has been replaced).

Energy is *not* modelled here: schemes count the activity (ways precharged,
tags compared) and the energy model prices it afterwards.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import ReplacementPolicy, RoundRobinReplacement
from repro.errors import CacheConfigError

__all__ = ["CamCache"]


class CamCache:
    """Tag store of a set-associative cache with explicit-way fills."""

    def __init__(self, geometry: CacheGeometry, policy: Optional[ReplacementPolicy] = None):
        self.geometry = geometry
        sets, ways = geometry.num_sets, geometry.ways
        if policy is None:
            policy = RoundRobinReplacement(sets, ways)
        if policy.num_sets != sets or policy.ways != ways:
            raise CacheConfigError(
                f"replacement policy geometry {policy.num_sets}x{policy.ways} "
                f"does not match cache {sets}x{ways}"
            )
        self.policy = policy
        self._tags: List[List[int]] = [[-1] * ways for _ in range(sets)]
        self._generation: List[List[int]] = [[0] * ways for _ in range(sets)]
        self._fills = 0

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def find(self, set_index: int, tag: int) -> int:
        """Way holding ``tag`` in ``set_index``, or -1 (a full CAM search)."""
        try:
            return self._tags[set_index].index(tag)
        except ValueError:
            return -1

    def probe_way(self, set_index: int, way: int, tag: int) -> bool:
        """Single-way tag check (a way-placement access)."""
        return self._tags[set_index][way] == tag

    def valid(self, set_index: int, way: int) -> bool:
        return self._tags[set_index][way] != -1

    def tag_at(self, set_index: int, way: int) -> int:
        return self._tags[set_index][way]

    def generation(self, set_index: int, way: int) -> int:
        """Fill counter of (set, way): identifies the resident line uniquely."""
        return self._generation[set_index][way]

    # ------------------------------------------------------------------
    # Fills
    # ------------------------------------------------------------------
    def fill(self, set_index: int, tag: int, way: Optional[int] = None) -> Tuple[int, bool]:
        """Install ``tag``; returns ``(way_used, evicted_valid_line)``.

        ``way`` forces the paper's explicit way placement; ``None`` delegates
        the victim choice to the replacement policy.
        """
        if tag < 0:
            raise CacheConfigError(f"tags must be non-negative, got {tag}")
        if way is None:
            way = self.policy.victim(set_index)
        tags = self._tags[set_index]
        evicted_valid = tags[way] != -1
        tags[way] = tag
        self._generation[set_index][way] += 1
        self._fills += 1
        self.policy.on_fill(set_index, way)
        return way, evicted_valid

    def invalidate_all(self) -> None:
        """Flush the cache (tags only; generations keep counting)."""
        for tags in self._tags:
            for way in range(len(tags)):
                tags[way] = -1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_fills(self) -> int:
        return self._fills

    def occupancy(self) -> float:
        """Fraction of lines currently valid."""
        valid = sum(1 for tags in self._tags for tag in tags if tag != -1)
        return valid / (self.geometry.num_sets * self.geometry.ways)

    def resident_lines(self) -> List[Tuple[int, int, int]]:
        """All valid (set, way, tag) triples, for tests and inspection."""
        return [
            (set_index, way, tag)
            for set_index, tags in enumerate(self._tags)
            for way, tag in enumerate(tags)
            if tag != -1
        ]

    def assert_no_duplicate_tags(self) -> None:
        """Invariant check: a tag may appear in at most one way of a set."""
        for set_index, tags in enumerate(self._tags):
            seen = {}
            for way, tag in enumerate(tags):
                if tag == -1:
                    continue
                if tag in seen:
                    raise CacheConfigError(
                        f"duplicate tag {tag:#x} in set {set_index} "
                        f"(ways {seen[tag]} and {way})"
                    )
                seen[tag] = way
