"""The instruction TLB, extended with the paper's way-placement bit.

A fully-associative TLB of ``entries`` page translations with round-robin
replacement (matching the XScale's 32-entry I-TLB).  Each entry carries one
extra *way-placement bit* — set by the operating system when it installs the
translation — saying whether the page lies inside the way-placement area.

The way-placement area is a prefix ``[0, wpa_size)`` of the binary and a
multiple of the page size; the OS can resize it at any moment (the paper's
"static or per-program basis, even adjusting it during program execution"),
which here just re-derives the bit on future installs and rewrites resident
entries — modelling an OS that updates the page table and shoots down the
TLB bits.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import CacheConfigError
from repro.utils.bitops import log2_exact

__all__ = ["InstructionTlb"]


class InstructionTlb:
    """Fully-associative I-TLB with per-entry way-placement bits."""

    def __init__(self, entries: int, page_size: int, wpa_size: int = 0):
        if entries < 1:
            raise CacheConfigError(f"TLB needs at least one entry, got {entries}")
        log2_exact(page_size, "page size")
        self.entries = entries
        self.page_size = page_size
        self._page_bits = log2_exact(page_size, "page size")
        self._pages: List[int] = [-1] * entries  # virtual page numbers
        self._wp_bits: List[bool] = [False] * entries
        self._pointer = 0
        self._wpa_pages = 0
        self.set_wpa_size(wpa_size)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def set_wpa_size(self, wpa_size: int) -> None:
        """(Re)size the way-placement area; must be a page multiple."""
        if wpa_size < 0 or wpa_size % self.page_size:
            raise CacheConfigError(
                f"way-placement area size {wpa_size} is not a non-negative "
                f"multiple of the {self.page_size}-byte page size"
            )
        self._wpa_pages = wpa_size >> self._page_bits
        # The OS rewrites the bit in resident entries when it resizes the area.
        for index, page in enumerate(self._pages):
            if page != -1:
                self._wp_bits[index] = page < self._wpa_pages

    @property
    def wpa_size(self) -> int:
        return self._wpa_pages << self._page_bits

    def page_number(self, address: int) -> int:
        return address >> self._page_bits

    # ------------------------------------------------------------------
    def access(self, address: int) -> bool:
        """Translate ``address``; returns the way-placement bit.

        Counts hits/misses; a miss installs the translation (round-robin)
        with the bit the OS would write.
        """
        page = address >> self._page_bits
        try:
            index = self._pages.index(page)
        except ValueError:
            self.misses += 1
            index = self._pointer
            self._pointer = (self._pointer + 1) % self.entries
            self._pages[index] = page
            self._wp_bits[index] = page < self._wpa_pages
            return self._wp_bits[index]
        self.hits += 1
        return self._wp_bits[index]

    def is_way_placed(self, address: int) -> bool:
        """Ground truth (the page table's view), independent of residency."""
        return (address >> self._page_bits) < self._wpa_pages

    def resident(self) -> Dict[int, bool]:
        """Resident page -> way-placement bit, for tests."""
        return {
            page: bit
            for page, bit in zip(self._pages, self._wp_bits)
            if page != -1
        }
