"""Cache hardware models: geometry, CAM cache, I-TLB, way-hint bit.

These model the XScale-style instruction memory hierarchy of the paper's
Section 4: a highly-associative CAM-organised instruction cache (each set is
a fully-associative CAM sub-bank), a fully-associative I-TLB extended with a
per-page *way-placement bit*, and the single global *way-hint bit* that
predicts whether the next access falls inside the way-placement area.
"""

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import (
    ReplacementPolicy,
    RoundRobinReplacement,
    RandomReplacement,
    LruReplacement,
)
from repro.cache.cam_cache import CamCache
from repro.cache.itlb import InstructionTlb
from repro.cache.wayhint import WayHintBit
from repro.cache.access import FetchCounters

__all__ = [
    "CacheGeometry",
    "ReplacementPolicy",
    "RoundRobinReplacement",
    "RandomReplacement",
    "LruReplacement",
    "CamCache",
    "InstructionTlb",
    "WayHintBit",
    "FetchCounters",
]
