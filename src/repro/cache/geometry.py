"""Cache geometry: sizes, field extraction, and the way-placement mapping.

The XScale-style cache is organised as ``num_sets`` CAM sub-banks, each
holding all ``ways`` lines of one set.  Addresses split, LSB first, into:

* ``line offset``  — ``log2(line_size)`` bits;
* ``set index``    — ``log2(num_sets)`` bits;
* ``tag``          — the rest.

The paper's way-placement mapping takes the ``log2(ways)`` *least
significant tag bits* as the explicit way index, so a contiguous region of
exactly one cache-size of bytes covers every (set, way) once.  The tag keeps
its full length ("the way-placement bits are also used as part of it").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CacheConfigError
from repro.utils.bitops import log2_exact, mask

__all__ = ["CacheGeometry"]


@dataclass(frozen=True)
class CacheGeometry:
    """Immutable description of a set-associative cache."""

    size_bytes: int
    ways: int
    line_size: int
    address_bits: int = 32

    def __post_init__(self) -> None:
        log2_exact(self.size_bytes, "cache size")
        log2_exact(self.ways, "associativity")
        log2_exact(self.line_size, "line size")
        if self.line_size < 4:
            raise CacheConfigError(f"line size {self.line_size} below one instruction")
        if self.size_bytes < self.ways * self.line_size:
            raise CacheConfigError(
                f"cache of {self.size_bytes} bytes cannot hold {self.ways} ways "
                f"of {self.line_size}-byte lines"
            )
        if self.address_bits <= self.offset_bits + self.set_bits:
            raise CacheConfigError(
                f"{self.address_bits} address bits leave no tag bits for "
                f"{self.size_bytes}B/{self.ways}-way/{self.line_size}B geometry"
            )

    # -- derived quantities -------------------------------------------------
    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways

    @property
    def offset_bits(self) -> int:
        return log2_exact(self.line_size, "line size")

    @property
    def set_bits(self) -> int:
        return log2_exact(self.num_sets, "set count")

    @property
    def way_bits(self) -> int:
        return log2_exact(self.ways, "way count")

    @property
    def tag_bits(self) -> int:
        return self.address_bits - self.offset_bits - self.set_bits

    @property
    def instructions_per_line(self) -> int:
        return self.line_size // 4

    # -- address slicing ----------------------------------------------------
    def line_address(self, address: int) -> int:
        return address & ~(self.line_size - 1)

    def set_index(self, address: int) -> int:
        return (address >> self.offset_bits) & mask(self.set_bits)

    def tag(self, address: int) -> int:
        return address >> (self.offset_bits + self.set_bits)

    def mandated_way(self, address: int) -> int:
        """The explicit way the way-placement mapping assigns this address.

        The least significant ``way_bits`` bits of the tag ("a 32-way cache
        uses the lower 5 bits from the tag to select the way").
        """
        return self.tag(address) & mask(self.way_bits)

    def reconstruct_address(self, tag: int, set_index: int) -> int:
        """Inverse of (tag, set): the line base address."""
        return (tag << (self.offset_bits + self.set_bits)) | (
            set_index << self.offset_bits
        )

    def describe(self) -> str:
        size = (
            f"{self.size_bytes // 1024}KB"
            if self.size_bytes >= 1024
            else f"{self.size_bytes}B"
        )
        return (
            f"{size}, {self.ways}-way, "
            f"{self.line_size}B lines ({self.num_sets} sets, "
            f"{self.tag_bits}-bit tags)"
        )
