"""Synthetic program generator: structured CFGs with controlled locality.

The generator builds a program as a call DAG of functions.  Function bodies
are recursive compositions of four region kinds:

* plain straight-line blocks,
* if/else diamonds (forward conditional branch + join),
* loops (fall-through body closed by a backward conditional latch),
* call sites (always to a *higher-indexed* function, so the call graph is
  acyclic and trace generation needs no recursion guard).

Every conditional branch gets a :class:`BranchRole` describing how inputs
should drive it (loop trip ranges, taken probabilities, hot/cold), which
:mod:`repro.workloads.inputs` later turns into concrete branch models.

Hot/cold skew — the property way-placement exploits — comes from two knobs:

* the last ``kernel_functions`` functions of the DAG are *kernels*: small,
  tightly looping, high-trip-count bodies reachable from everywhere (the
  ``crc``/``sha`` inner loops of the world);
* with probability ``cold_prob`` a region is guarded by a mostly-taken
  forward branch that jumps over it — rarely executed error/option handling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.program.builder import FunctionBuilder, ProgramBuilder
from repro.program.program import Program
from repro.utils.rng import stable_seed

__all__ = ["SynthSpec", "BranchRole", "Workload", "generate_workload"]


@dataclass(frozen=True)
class SynthSpec:
    """Shape parameters for one synthetic benchmark."""

    name: str
    code_kb: float = 24.0  # approximate static code size target
    num_functions: int = 12  # functions besides main
    kernel_functions: int = 2  # hot innermost kernels at the DAG bottom
    block_size: Tuple[int, int] = (2, 7)  # instructions per block (body)
    mem_density: float = 0.25  # load/store fraction of generated bodies
    loop_prob: float = 0.25  # P(region is a loop), shrinking per nest level
    call_prob: float = 0.15  # P(region is a call site)
    calls_in_loops: bool = True  # allow call sites inside loop bodies
    cold_prob: float = 0.15  # P(region is cold-guarded)
    diamond_prob: float = 0.25  # P(region is an if/else diamond)
    max_loop_depth: int = 3
    kernel_body_items: Tuple[int, int] = (1, 2)  # region items per kernel loop body
    kernel_share: float = 0.35  # kernels' share weight of static code
    kernel_trips: Tuple[int, int] = (30, 120)  # kernel loop trips (large input)
    normal_trips: Tuple[int, int] = (3, 12)  # other loops (large input)
    driver_trips: int = 200  # main's outer driver loop (large input)
    small_input_scale: float = 0.25  # trip scaling for the small/train input
    taken_prob_range: Tuple[float, float] = (0.2, 0.8)  # if/else biases
    cold_taken_prob: float = 0.97  # how reliably cold code is skipped

    def __post_init__(self) -> None:
        if self.num_functions < 1:
            raise WorkloadError(f"{self.name}: need at least one function")
        if not 0 < self.kernel_functions <= self.num_functions:
            raise WorkloadError(f"{self.name}: kernel_functions out of range")
        if self.block_size[0] < 1 or self.block_size[1] < self.block_size[0]:
            raise WorkloadError(f"{self.name}: bad block size range {self.block_size}")
        if self.code_kb <= 0:
            raise WorkloadError(f"{self.name}: code size target must be positive")
        if not 0.0 < self.small_input_scale <= 1.0:
            raise WorkloadError(f"{self.name}: small_input_scale must be in (0, 1]")
        if self.kernel_trips[0] < 1 or self.kernel_trips[1] < self.kernel_trips[0]:
            raise WorkloadError(f"{self.name}: bad kernel trip range")
        if self.normal_trips[0] < 1 or self.normal_trips[1] < self.normal_trips[0]:
            raise WorkloadError(f"{self.name}: bad normal trip range")
        if self.driver_trips < 1:
            raise WorkloadError(f"{self.name}: driver_trips must be >= 1")
        if self.kernel_body_items[0] < 1 or self.kernel_body_items[1] < self.kernel_body_items[0]:
            raise WorkloadError(f"{self.name}: bad kernel_body_items range")
        if self.kernel_share <= 0:
            raise WorkloadError(f"{self.name}: kernel_share must be positive")
        if not 0.0 <= self.mem_density <= 1.0:
            raise WorkloadError(f"{self.name}: mem_density must be in [0, 1]")


@dataclass(frozen=True)
class BranchRole:
    """How the inputs should drive one conditional branch."""

    kind: str  # 'loop' or 'cond'
    trips: Tuple[int, int] = (1, 1)  # loops: trip-count range on the LARGE input
    taken_prob: float = 0.5  # conds: P(branch taken) on the LARGE input
    cold_guard: bool = False  # taken jumps over rarely-executed code
    kernel: bool = False  # belongs to a hot kernel function


@dataclass(frozen=True)
class Workload:
    """A generated benchmark: the program plus its branch roles."""

    program: Program
    roles: Dict[int, BranchRole]
    spec: SynthSpec

    @property
    def name(self) -> str:
        return self.program.name


class _FunctionGenerator:
    """Emits one function's blocks into a :class:`FunctionBuilder`."""

    def __init__(
        self,
        generator: "_WorkloadGenerator",
        fb: FunctionBuilder,
        function_index: int,
        instruction_budget: int,
        is_kernel: bool,
    ):
        self.gen = generator
        self.fb = fb
        self.index = function_index
        self.budget = instruction_budget
        self.is_kernel = is_kernel
        self._label_serial = 0
        #: (local label, role) — resolved to uids after the program is built
        self.pending_roles: List[Tuple[str, BranchRole]] = []
        #: deferred out-of-line cold regions: (cold entry label, resume label)
        self._deferred_cold: List[Tuple[str, str]] = []

    # -- helpers -------------------------------------------------------------
    def _label(self, stem: str) -> str:
        self._label_serial += 1
        return f"{stem}{self._label_serial}"

    def _body_size(self) -> int:
        lo, hi = self.gen.spec.block_size
        size = self.gen.rng.randint(lo, hi)
        self.budget -= size + 1  # +1 approximates the terminator
        return size

    # -- emission --------------------------------------------------------------
    def emit(self) -> None:
        self.fb.block(self._label("entry"), self._body_size())
        self._region(depth=0)
        self.fb.block(self._label("ret"), max(1, self.gen.spec.block_size[0]), ret=True)
        # Out-of-line cold regions live past the return, like the error
        # handling gcc moves to the end of a function.
        for cold_entry, resume in self._deferred_cold:
            self.fb.block(cold_entry, self._body_size())
            for _ in range(self.gen.rng.randint(1, 4)):
                self.fb.block(self._label("cold"), self._body_size())
            self.fb.block(self._label("cold_end"), self._body_size(), jump=resume)

    def _region(self, depth: int, max_items: Optional[int] = None) -> None:
        """Emit region items until the budget (or item bound) is spent."""
        spec = self.gen.spec
        rng = self.gen.rng
        items = 0
        while self.budget > 0 and (max_items is None or items < max_items):
            items += 1
            roll = rng.random()
            loop_p = spec.loop_prob / (depth + 1)
            if depth < spec.max_loop_depth and roll < loop_p:
                self._loop(depth)
                continue
            roll -= loop_p
            calls_allowed = spec.calls_in_loops or depth == 0
            if (
                roll < spec.call_prob
                and calls_allowed
                and self.gen.callable_targets(self.index)
            ):
                # Call sites inside loop bodies cascade heat down the call
                # DAG (a callee inherits its caller's trip product); flat-
                # profile benchmarks disable that to spread execution mass.
                self._call()
                continue
            roll -= spec.call_prob
            if roll < spec.cold_prob:
                self._cold_region()
                continue
            roll -= spec.cold_prob
            if roll < spec.diamond_prob:
                self._diamond()
                continue
            self.fb.block(self._label("b"), self._body_size())

    def _loop(self, depth: int) -> None:
        spec = self.gen.spec
        head = self._label("loop_head")
        self.fb.block(head, self._body_size())
        # Kernel loop-body size controls the hot working set: tight 1-2 item
        # bodies give crypto/DSP-style sub-KB kernels, larger ranges spread
        # the hot footprint over tens of KB (image/compression codes).
        if self.is_kernel:
            body_items = self.gen.rng.randint(*spec.kernel_body_items)
        else:
            body_items = self.gen.rng.randint(1, 3)
        self._region(depth + 1, max_items=body_items)
        latch = self._label("latch")
        self.fb.block(latch, self._body_size(), branch=head)
        trips = spec.kernel_trips if self.is_kernel else spec.normal_trips
        self.pending_roles.append(
            (latch, BranchRole(kind="loop", trips=trips, kernel=self.is_kernel))
        )

    def _call(self) -> None:
        callee = self.gen.pick_callee(self.index)
        self.fb.block(self._label("call"), self._body_size(), call=callee)

    def _diamond(self) -> None:
        """if/else: cond falls into the then-part, taken goes to the else."""
        spec = self.gen.spec
        rng = self.gen.rng
        cond_lbl = self._label("cond")
        else_lbl = self._label("else")
        join_lbl = self._label("join")
        self.fb.block(cond_lbl, self._body_size(), branch=else_lbl)
        for _ in range(rng.randint(0, 1)):
            self.fb.block(self._label("then"), self._body_size())
        self.fb.block(self._label("then_end"), self._body_size(), jump=join_lbl)
        self.fb.block(else_lbl, self._body_size())
        for _ in range(rng.randint(0, 1)):
            self.fb.block(self._label("elseb"), self._body_size())
        self.fb.block(join_lbl, self._body_size())
        p = rng.uniform(*spec.taken_prob_range)
        self.pending_roles.append(
            (cond_lbl, BranchRole(kind="cond", taken_prob=p, kernel=self.is_kernel))
        )

    def _cold_region(self) -> None:
        """A rarely-taken guard branching to out-of-line cold code.

        The hot path falls straight through (``guard`` -> ``resume``); the
        cold blocks are emitted past the function's return and jump back to
        ``resume`` — the shape a compiler gives inline error handling.
        """
        spec = self.gen.spec
        guard_lbl = self._label("guard")
        cold_lbl = self._label("cold_entry")
        resume_lbl = self._label("resume")
        self.fb.block(guard_lbl, self._body_size(), branch=cold_lbl)
        self.fb.block(resume_lbl, self._body_size())
        self._deferred_cold.append((cold_lbl, resume_lbl))
        self.pending_roles.append(
            (
                guard_lbl,
                BranchRole(
                    kind="cond",
                    taken_prob=1.0 - spec.cold_taken_prob,
                    cold_guard=True,
                ),
            )
        )


class _WorkloadGenerator:
    """Drives function generation for one benchmark spec."""

    def __init__(self, spec: SynthSpec, seed_salt: str = ""):
        self.spec = spec
        self.rng = random.Random(stable_seed("workload", spec.name, seed_salt))
        self._function_names = [f"f{i}" for i in range(spec.num_functions)]
        self._kernel_names = set(self._function_names[-spec.kernel_functions :])
        self.called: set = set()

    def callable_targets(self, caller_index: int) -> List[str]:
        """Functions a given function may call (strictly higher index)."""
        return self._function_names[caller_index + 1 :]

    def pick_callee(self, caller_index: int) -> str:
        targets = self.callable_targets(caller_index)
        # Bias toward the kernels at the DAG bottom: shared hot code.
        weights = [4.0 if t in self._kernel_names else 1.0 for t in targets]
        callee = self.rng.choices(targets, weights=weights, k=1)[0]
        self.called.add(callee)
        return callee

    def generate(self) -> Workload:
        spec = self.spec
        builder = ProgramBuilder(spec.name)

        total_instructions = int(spec.code_kb * 1024 / 4)
        main_share = max(24, total_instructions // 20)
        remaining = max(total_instructions - main_share, spec.num_functions * 16)
        weights = [
            spec.kernel_share
            if index >= spec.num_functions - spec.kernel_functions
            else 1.0
            for index in range(spec.num_functions)
        ]
        weight_sum = sum(weights)
        shares = [max(16, int(remaining * w / weight_sum)) for w in weights]

        # Declare main first so it heads the original layout, but fill it in
        # only after the other functions exist: its driver loop must call
        # every function nothing else calls, keeping the whole DAG live.
        main_fb = builder.function("main", mem_density=spec.mem_density)

        generators: List[_FunctionGenerator] = []
        for index, name in enumerate(self._function_names):
            fb = builder.function(name, mem_density=spec.mem_density)
            is_kernel = index >= spec.num_functions - spec.kernel_functions
            fgen = _FunctionGenerator(self, fb, index, shares[index], is_kernel)
            fgen.emit()
            generators.append(fgen)

        top_level = set(self._function_names[: max(1, spec.num_functions // 3)])
        top_level.update(
            name for name in self._function_names if name not in self.called
        )
        main_fb.block("entry", 3)
        main_fb.block("driver_head", 2)
        for i, callee in enumerate(sorted(top_level, key=self._function_names.index)):
            main_fb.block(f"drive{i}", self.rng.randint(1, 3), call=callee)
        main_fb.block("driver_latch", 2, branch="driver_head")
        main_fb.block("fin", 1, ret=True)

        program = builder.build(entry="main")

        roles: Dict[int, BranchRole] = {}
        driver_uid = program.uid_of_label("main", "driver_latch")
        roles[driver_uid] = BranchRole(
            kind="loop", trips=(spec.driver_trips, spec.driver_trips)
        )
        for fgen in generators:
            for label, role in fgen.pending_roles:
                roles[program.uid_of_label(fgen.fb.name, label)] = role
        return Workload(program=program, roles=roles, spec=spec)


def generate_workload(spec: SynthSpec, seed_salt: str = "") -> Workload:
    """Generate the synthetic benchmark described by ``spec``.

    The same spec and salt always produce the identical program (stable
    seeded RNG), so traces and layouts are reproducible across runs.
    """
    return _WorkloadGenerator(spec, seed_salt).generate()
