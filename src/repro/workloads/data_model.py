"""Synthetic data-access streams: the D-cache side of each benchmark.

The headline experiments fold data-side energy into a calibrated
per-memory-op constant (see ``EnergyParams.mem_op_extra_pj``).  For the
D-cache refinement ablation, this module synthesizes an actual data-address
stream per benchmark so the Table 1 D-cache can be simulated like the
I-cache: a mixture of

* **streaming** runs — sequential array walks (media/crypto kernels),
* **random** touches — uniform within the benchmark's data working set
  (tables, hashes, tries),
* **stack** accesses — a small, intensely reused region.

The stream is emitted directly in compressed line-event form, so the
ordinary cache schemes and energy models consume it unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import WorkloadError
from repro.trace.events import LineEventTrace, SEQUENTIAL_SLOT
from repro.utils.rng import stable_seed

__all__ = ["DataSpec", "data_spec_for", "synthesize_data_events"]

#: Data segment base: keeps data lines disjoint from code addresses.
DATA_BASE = 0x4000_0000
#: Stack segment base.
STACK_BASE = 0x7FFF_0000


@dataclass(frozen=True)
class DataSpec:
    """Shape of one benchmark's data-access behaviour."""

    name: str
    working_set_kb: float = 64.0  # heap/table region randomly touched
    streaming_fraction: float = 0.45  # share of accesses in sequential runs
    random_fraction: float = 0.25  # share touching the working set randomly
    stack_fraction: float = 0.30  # share hitting the stack region
    stream_run_bytes: int = 256  # mean sequential run before jumping
    stack_kb: float = 1.0
    hot_reuse: float = 0.85  # share of random touches hitting the hot subset
    hot_subset: float = 0.10  # hot subset as a fraction of the working set
    touches_per_line: int = 8  # accesses per streamed line (row reuse)

    def __post_init__(self) -> None:
        total = self.streaming_fraction + self.random_fraction + self.stack_fraction
        if abs(total - 1.0) > 1e-6:
            raise WorkloadError(
                f"{self.name}: access fractions must sum to 1, got {total}"
            )
        if self.working_set_kb <= 0 or self.stack_kb <= 0:
            raise WorkloadError(f"{self.name}: working set sizes must be positive")
        if self.stream_run_bytes < 4:
            raise WorkloadError(f"{self.name}: stream runs must cover >= one word")
        if not 0.0 <= self.hot_reuse <= 1.0 or not 0.0 < self.hot_subset <= 1.0:
            raise WorkloadError(f"{self.name}: bad reuse-skew parameters")
        if self.touches_per_line < 1:
            raise WorkloadError(f"{self.name}: touches_per_line must be >= 1")


#: Benchmark-class presets (keyed by the same names as MIBENCH_BENCHMARKS).
_CLASS_PRESETS = {
    "streaming": DataSpec(
        "streaming",
        working_set_kb=128.0,
        streaming_fraction=0.70,
        random_fraction=0.05,
        stack_fraction=0.25,
        stream_run_bytes=512,
        touches_per_line=12,
        hot_reuse=0.90,
        hot_subset=0.05,
    ),
    "table": DataSpec(
        "table",
        working_set_kb=48.0,
        streaming_fraction=0.25,
        random_fraction=0.45,
        stack_fraction=0.30,
        touches_per_line=10,
        hot_reuse=0.95,
        hot_subset=0.08,
    ),
    "compact": DataSpec(
        "compact",
        working_set_kb=8.0,
        streaming_fraction=0.40,
        random_fraction=0.25,
        stack_fraction=0.35,
    ),
}

_BENCHMARK_CLASSES = {
    # media / tiff / jpeg: large streaming frames
    "cjpeg": "streaming",
    "djpeg": "streaming",
    "tiff2bw": "streaming",
    "tiff2rgba": "streaming",
    "tiffdither": "streaming",
    "tiffmedian": "streaming",
    "susan_c": "streaming",
    "susan_e": "streaming",
    "susan_s": "streaming",
    "rawcaudio": "streaming",
    "rawdaudio": "streaming",
    # dictionary / pointer codes: random table walks
    "patricia": "table",
    "ispell": "table",
    "rsynth": "table",
    "rijndael_d": "table",
    "rijndael_e": "table",
    "blowfish_d": "table",
    "blowfish_e": "table",
    # register-resident kernels: small data footprints
    "bitcount": "compact",
    "sha": "compact",
    "crc": "compact",
    "fft": "compact",
    "fft_i": "compact",
}


def data_spec_for(benchmark: str) -> DataSpec:
    """The data-access preset for a named benchmark (default: table)."""
    import dataclasses

    preset = _CLASS_PRESETS[_BENCHMARK_CLASSES.get(benchmark, "table")]
    return dataclasses.replace(preset, name=benchmark)


def synthesize_data_events(
    spec: DataSpec,
    num_accesses: int,
    line_size: int = 32,
    seed_salt: str = "",
) -> LineEventTrace:
    """Generate ``num_accesses`` data accesses as a line-event trace."""
    if num_accesses < 0:
        raise WorkloadError("num_accesses must be non-negative")
    rng = random.Random(stable_seed("data", spec.name, seed_salt))
    ws_lines = max(1, int(spec.working_set_kb * 1024) // line_size)
    stack_lines = max(1, int(spec.stack_kb * 1024) // line_size)
    mean_run_lines = max(1, spec.stream_run_bytes // line_size)

    addrs: List[int] = []
    counts: List[int] = []
    remaining = num_accesses
    previous_line = -1
    stream_cursor = 0

    while remaining > 0:
        roll = rng.random()
        if roll < spec.streaming_fraction:
            # a sequential run of lines, several word accesses per line
            run = rng.randint(1, 2 * mean_run_lines)
            per_line = max(1, spec.touches_per_line)
            for _ in range(run):
                if remaining <= 0:
                    break
                line = DATA_BASE + (stream_cursor % ws_lines) * line_size
                stream_cursor += 1
                touches = min(per_line, remaining)
                if line == previous_line:
                    counts[-1] += touches
                else:
                    addrs.append(line)
                    counts.append(touches)
                previous_line = line
                remaining -= touches
        elif roll < spec.streaming_fraction + spec.random_fraction:
            # table lookups reuse a hot subset heavily (the 80/20 shape of
            # real hash/trie traffic), with a cold tail over the full set
            hot_lines = max(1, int(ws_lines * spec.hot_subset))
            if rng.random() < spec.hot_reuse:
                line = DATA_BASE + rng.randrange(hot_lines) * line_size
            else:
                line = DATA_BASE + rng.randrange(ws_lines) * line_size
            if line == previous_line:
                counts[-1] += 1
            else:
                addrs.append(line)
                counts.append(1)
            previous_line = line
            remaining -= 1
        else:
            line = STACK_BASE + rng.randrange(stack_lines) * line_size
            touches = min(rng.randint(1, 4), remaining)
            if line == previous_line:
                counts[-1] += touches
            else:
                addrs.append(line)
                counts.append(touches)
            previous_line = line
            remaining -= touches

    return LineEventTrace(
        line_size=line_size,
        line_addrs=np.asarray(addrs, dtype=np.int64),
        counts=np.asarray(counts, dtype=np.int32),
        slots=np.full(len(addrs), SEQUENTIAL_SLOT, dtype=np.int16),
    )
