"""Input models: turning branch roles into concrete branch behaviour.

The paper profiles on MiBench's *small* inputs and evaluates on the *large*
ones.  Here an input scales loop trip counts (small inputs iterate less) and
jitters branch probabilities per (benchmark, input) — so the profile the
layout pass sees is *representative but not identical* to the evaluation
run, reproducing the train/test methodology rather than an oracle profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import WorkloadError
from repro.trace.branch_model import (
    BernoulliBranch,
    BranchModel,
    BranchModelMap,
    LoopBranch,
)
from repro.utils.rng import make_rng
from repro.workloads.synth import BranchRole, Workload

__all__ = ["InputModel", "SMALL_INPUT", "LARGE_INPUT", "branch_models_for"]


@dataclass(frozen=True)
class InputModel:
    """One named input: scaling and jitter applied to branch roles."""

    name: str
    trip_scale: float = 1.0  # multiplies loop trip counts
    trip_jitter: float = 0.2  # +/- fraction applied per loop, seeded
    prob_jitter: float = 0.06  # +/- absolute shift on branch probabilities
    seed_salt: str = ""

    def __post_init__(self) -> None:
        if self.trip_scale <= 0:
            raise WorkloadError(f"input {self.name!r}: trip_scale must be positive")
        if not 0.0 <= self.trip_jitter < 1.0:
            raise WorkloadError(f"input {self.name!r}: trip_jitter must be in [0, 1)")
        if not 0.0 <= self.prob_jitter <= 0.5:
            raise WorkloadError(f"input {self.name!r}: prob_jitter must be in [0, 0.5]")


#: The paper's two input sets (Section 5): small for profiling, large for
#: evaluation.  The small input runs shorter loops and slightly different
#: branch biases.
SMALL_INPUT = InputModel(name="small", trip_scale=0.25, prob_jitter=0.08)
LARGE_INPUT = InputModel(name="large", trip_scale=1.0, prob_jitter=0.0)


def _loop_model(role: BranchRole, model: InputModel, rng) -> LoopBranch:
    scale = model.trip_scale
    if model.trip_jitter:
        scale *= 1.0 + rng.uniform(-model.trip_jitter, model.trip_jitter)
    lo = max(1, round(role.trips[0] * scale))
    hi = max(lo, round(role.trips[1] * scale))
    return LoopBranch(lo, hi)


def _cond_model(role: BranchRole, model: InputModel, rng) -> BernoulliBranch:
    p = role.taken_prob
    if model.prob_jitter:
        p += rng.uniform(-model.prob_jitter, model.prob_jitter)
    # Cold guards stay cold across inputs; clamp asymmetrically so a jitter
    # cannot turn error handling into hot code.
    if role.cold_guard:
        p = min(max(p, 0.0), 0.15)
    else:
        p = min(max(p, 0.02), 0.98)
    return BernoulliBranch(p)


def branch_models_for(workload: Workload, input_model: InputModel) -> BranchModelMap:
    """Concrete :class:`BranchModelMap` for a workload under one input."""
    rng = make_rng(
        "input", workload.name, input_model.name, input_model.seed_salt
    )
    models: Dict[int, BranchModel] = {}
    for uid, role in sorted(workload.roles.items()):
        if role.kind == "loop":
            models[uid] = _loop_model(role, input_model, rng)
        elif role.kind == "cond":
            models[uid] = _cond_model(role, input_model, rng)
        else:
            raise WorkloadError(f"unknown branch role kind {role.kind!r}")
    return BranchModelMap(models)
