"""The 23 MiBench benchmarks of the paper's Figure 4, as synthetic specs.

Parameters are chosen per benchmark to echo the published character of the
original (static code size, kernel concentration, loop structure, branching
density).  The *absolute* numbers are synthetic; what matters for the
reproduction is the spread of **hot-footprint sizes**, because that is what
way-placement coverage depends on:

* *tiny-kernel* codes (crc, adpcm, bitcount, sha, blowfish, rijndael): a
  sub-KB loop nest dominates, so even a 1KB way-placement area covers
  almost every fetch;
* *medium* codes (susan, fft, patricia): a few KB of hot loops;
* *large, flat* codes (jpeg, tiff, ispell, rsynth): tens of functions of
  moderate heat spread the hot working set over tens of KB, so small
  way-placement areas lose coverage and the benchmark sits at the weak end
  of the paper's Figure 4 spread.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.workloads.synth import SynthSpec, Workload, generate_workload

__all__ = ["MIBENCH_BENCHMARKS", "benchmark_names", "load_benchmark"]


def _tiny_kernel(name: str, **overrides) -> SynthSpec:
    """Sub-KB hot loop dominating execution (crypto/telecom style)."""
    defaults = dict(
        code_kb=4.0,
        num_functions=5,
        kernel_functions=2,
        kernel_body_items=(1, 2),
        kernel_share=0.35,
        kernel_trips=(80, 300),
        driver_trips=400,
        block_size=(3, 8),
        mem_density=0.12,
    )
    defaults.update(overrides)
    return SynthSpec(name=name, **defaults)


def _medium(name: str, **overrides) -> SynthSpec:
    """A few KB of hot loop nests (image filters, FFTs, tries).

    Depth-2 nesting concentrates heat into loop bodies a few KB wide.
    """
    defaults = dict(
        code_kb=18.0,
        num_functions=10,
        kernel_functions=3,
        kernel_body_items=(4, 10),
        kernel_share=0.9,
        kernel_trips=(20, 90),
        driver_trips=150,
        max_loop_depth=2,
        block_size=(2, 7),
        mem_density=0.30,
    )
    defaults.update(overrides)
    return SynthSpec(name=name, **defaults)


def _large_flat(name: str, **overrides) -> SynthSpec:
    """Tens of KB of moderately hot code (jpeg/tiff/ispell style).

    Depth-1 loops keep any single body from dominating (no geometric trip
    blow-up), so execution mass spreads across many kernels and the hot
    footprint reaches tens of KB — the flat-profile end of MiBench.
    """
    defaults = dict(
        code_kb=72.0,
        num_functions=26,
        kernel_functions=10,
        kernel_body_items=(6, 16),
        kernel_share=1.4,
        calls_in_loops=False,
        kernel_trips=(6, 26),
        normal_trips=(2, 8),
        loop_prob=0.35,
        diamond_prob=0.05,
        cold_prob=0.40,
        cold_taken_prob=0.995,
        driver_trips=50,
        max_loop_depth=1,
        block_size=(2, 6),
        mem_density=0.38,
    )
    defaults.update(overrides)
    return SynthSpec(name=name, **defaults)


#: Benchmark name -> generator spec, in the paper's Figure 4 order.
MIBENCH_BENCHMARKS: Dict[str, SynthSpec] = {
    spec.name: spec
    for spec in [
        # --- automotive ------------------------------------------------------
        _tiny_kernel(
            "bitcount",
            code_kb=4.5,
            num_functions=8,
            kernel_functions=3,
            kernel_trips=(40, 150),
            block_size=(2, 6),
            mem_density=0.05,
        ),
        _medium("susan_c", code_kb=19.0, kernel_trips=(30, 120)),
        _medium("susan_e", code_kb=19.0, kernel_trips=(35, 140), kernel_share=0.8),
        _medium("susan_s", code_kb=16.0, kernel_trips=(50, 180), kernel_share=0.5),
        # --- consumer ---------------------------------------------------------
        _large_flat("cjpeg", code_kb=64.0, num_functions=24, kernel_functions=7),
        _large_flat("djpeg", code_kb=60.0, num_functions=22, kernel_functions=6),
        _large_flat(
            "tiff2bw", code_kb=76.0, num_functions=28, kernel_functions=8
        ),
        _large_flat(
            "tiff2rgba",
            code_kb=80.0,
            num_functions=30,
            kernel_functions=9,
            kernel_share=1.5,
        ),
        _large_flat(
            "tiffdither",
            code_kb=72.0,
            num_functions=28,
            kernel_functions=8,
            kernel_trips=(8, 30),
        ),
        _large_flat(
            "tiffmedian",
            code_kb=68.0,
            num_functions=26,
            kernel_functions=8,
            kernel_trips=(8, 32),
        ),
        # --- network / office ----------------------------------------------------
        _medium(
            "patricia",
            code_kb=12.0,
            num_functions=9,
            kernel_functions=3,
            kernel_trips=(8, 30),
            diamond_prob=0.40,
            loop_prob=0.18,
            driver_trips=250,
            block_size=(1, 5),
            mem_density=0.45,
        ),
        _large_flat(
            "ispell",
            code_kb=48.0,
            num_functions=20,
            kernel_functions=6,
            kernel_trips=(5, 18),
            diamond_prob=0.35,
            block_size=(1, 5),
            driver_trips=120,
            mem_density=0.42,
        ),
        _large_flat(
            "rsynth",
            code_kb=56.0,
            num_functions=22,
            kernel_functions=5,
            kernel_share=1.0,
            kernel_trips=(12, 45),
            driver_trips=80,
        ),
        # --- security ------------------------------------------------------------
        _tiny_kernel(
            "blowfish_d",
            code_kb=10.0,
            num_functions=7,
            kernel_trips=(60, 200),
            driver_trips=300,
        ),
        _tiny_kernel(
            "blowfish_e",
            code_kb=10.0,
            num_functions=7,
            kernel_trips=(60, 200),
            driver_trips=300,
        ),
        _tiny_kernel(
            "rijndael_d",
            code_kb=14.0,
            num_functions=8,
            kernel_functions=2,
            kernel_body_items=(1, 3),
            kernel_trips=(40, 160),
            driver_trips=250,
        ),
        _tiny_kernel(
            "rijndael_e",
            code_kb=14.0,
            num_functions=8,
            kernel_functions=2,
            kernel_body_items=(1, 3),
            kernel_trips=(40, 160),
            driver_trips=250,
        ),
        _tiny_kernel("sha", code_kb=6.0, num_functions=6, kernel_trips=(60, 240), mem_density=0.10),
        # --- telecom ---------------------------------------------------------------
        _tiny_kernel(
            "rawcaudio",
            code_kb=3.0,
            num_functions=4,
            kernel_trips=(100, 400),
            driver_trips=500,
            block_size=(3, 9),
        ),
        _tiny_kernel(
            "rawdaudio",
            code_kb=3.0,
            num_functions=4,
            kernel_trips=(100, 400),
            driver_trips=500,
            block_size=(3, 9),
        ),
        _tiny_kernel(
            "crc",
            code_kb=2.5,
            num_functions=4,
            kernel_trips=(150, 500),
            driver_trips=600,
            mem_density=0.03,
        ),
        _medium(
            "fft",
            code_kb=12.0,
            num_functions=8,
            kernel_trips=(30, 128),
            driver_trips=200,
        ),
        _medium(
            "fft_i",
            code_kb=12.0,
            num_functions=8,
            kernel_trips=(30, 128),
            driver_trips=200,
            kernel_share=0.6,
        ),
    ]
}


def benchmark_names() -> List[str]:
    """All benchmark names, in the paper's Figure 4 order."""
    return list(MIBENCH_BENCHMARKS)


def load_benchmark(name: str) -> Workload:
    """Generate the named benchmark's synthetic program."""
    try:
        spec = MIBENCH_BENCHMARKS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; available: {benchmark_names()}"
        ) from None
    return generate_workload(spec)
