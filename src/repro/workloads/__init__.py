"""Synthetic workloads standing in for the paper's MiBench benchmarks.

Real MiBench ARM binaries (and gcc + DIABLO to produce them) are not
available offline, so each of the 23 benchmarks the paper plots is
re-created as a synthetic program whose *structure* — code footprint, loop
nesting, hot/cold skew, call-graph shape — is chosen per benchmark to mimic
the published character of the original (tiny hot kernels for ``crc``/
``sha``/``rawcaudio``, large flat footprints for ``cjpeg``/``ispell``...).
See DESIGN.md §2 for why this substitution preserves the paper's effects.

Each benchmark has a ``small`` (profiling/train) and a ``large``
(evaluation) input, differing in loop trip counts and branch biases, so the
profile-guided layout faces realistic train/test mismatch.
"""

from repro.workloads.synth import SynthSpec, Workload, BranchRole, generate_workload
from repro.workloads.mibench import (
    MIBENCH_BENCHMARKS,
    benchmark_names,
    load_benchmark,
)
from repro.workloads.inputs import (
    InputModel,
    SMALL_INPUT,
    LARGE_INPUT,
    branch_models_for,
)
from repro.workloads.data_model import (
    DataSpec,
    data_spec_for,
    synthesize_data_events,
)

__all__ = [
    "SynthSpec",
    "Workload",
    "BranchRole",
    "generate_workload",
    "MIBENCH_BENCHMARKS",
    "benchmark_names",
    "load_benchmark",
    "InputModel",
    "SMALL_INPUT",
    "LARGE_INPUT",
    "branch_models_for",
    "DataSpec",
    "data_spec_for",
    "synthesize_data_events",
]
