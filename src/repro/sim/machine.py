"""The machine under test: the paper's Table 1, as a configuration object.

Values with dropped digits in the OCR'd paper text are reconstructed from
the Intel XScale microarchitecture the paper targets (see DESIGN.md §3):
32KB 32-way 32B-line caches, 32-entry fully-associative TLBs, 50-cycle
memory latency, single-issue in-order 7/8-stage pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.cache.geometry import CacheGeometry
from repro.errors import CacheConfigError

__all__ = ["MachineConfig", "XSCALE_BASELINE", "table1_rows"]


@dataclass(frozen=True)
class MachineConfig:
    """Microarchitectural parameters of the simulated embedded processor."""

    name: str = "xscale"
    pipeline_stages: int = 7
    issue_width: int = 1
    icache: CacheGeometry = CacheGeometry(32 * 1024, 32, 32)
    dcache: CacheGeometry = CacheGeometry(32 * 1024, 32, 32)
    itlb_entries: int = 32
    dtlb_entries: int = 32
    page_size: int = 1024
    memory_bus_bits: int = 32
    memory_latency_cycles: int = 50
    itlb_miss_cycles: int = 20
    hint_mispredict_cycles: int = 1

    def __post_init__(self) -> None:
        if self.pipeline_stages < 1 or self.issue_width < 1:
            raise CacheConfigError("pipeline stages and issue width must be >= 1")
        if self.memory_latency_cycles < 1:
            raise CacheConfigError("memory latency must be at least one cycle")
        if self.page_size & (self.page_size - 1):
            raise CacheConfigError(f"page size {self.page_size} not a power of two")

    def with_icache(self, size_bytes: int, ways: int, line_size: int = None) -> "MachineConfig":
        """A copy with a different instruction cache geometry (Section 6.3)."""
        line = line_size if line_size is not None else self.icache.line_size
        return replace(self, icache=CacheGeometry(size_bytes, ways, line))


#: The paper's baseline system configuration (Table 1).
XSCALE_BASELINE = MachineConfig()


def table1_rows(config: MachineConfig = XSCALE_BASELINE) -> List[Tuple[str, str]]:
    """The rows of the paper's Table 1, for the benchmark harness to print."""

    def cache_text(geometry: CacheGeometry) -> str:
        return (
            f"{geometry.size_bytes // 1024}KB, {geometry.ways}-Way, "
            f"{geometry.line_size}B Block"
        )

    return [
        ("Pipeline", f"{config.pipeline_stages}/{config.pipeline_stages + 1} Stages"),
        ("Functional Units", "1 ALU, 1 MAC, 1 Load/Store"),
        ("Issue", "Single Issue, In-Order"),
        ("Commit", "Out-of-Order (Scoreboard)"),
        ("Memory Bus Width", f"{config.memory_bus_bits} Bit"),
        ("Memory Latency", f"{config.memory_latency_cycles} Cycles"),
        (
            "I-TLB, D-TLB",
            f"{config.itlb_entries}-Entry Fully Associative",
        ),
        ("I-Cache, D-Cache", cache_text(config.icache)),
        ("Data Buffers", "32B Fill Buffer (Read) and 32B Write Buffer"),
    ]
