"""The simulation driver: program + layout + scheme + machine -> report.

``Simulator.run_events`` is the narrow waist every experiment goes through:
it instantiates a fresh fetch scheme, replays a line-event trace, prices the
activity with the energy models, and wraps everything in a
:class:`~repro.sim.report.SimulationReport`.  The :func:`simulate`
convenience function goes all the way from a program and layout (walking the
CFG itself); the experiment harness instead reuses cached block traces and
calls ``run_events`` directly.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.energy.cache_model import CacheEnergyModel
from repro.energy.params import EnergyParams
from repro.energy.processor import ProcessorEnergyModel
from repro.engine.kernels import FAST_SCHEMES, fast_counters
from repro.errors import SchemeError
from repro.layout.layouts import Layout
from repro.program.program import Program
from repro.resilience.chaos import chaos_point
from repro.schemes.base import make_scheme
from repro.sim.machine import MachineConfig, XSCALE_BASELINE
from repro.sim.report import SimulationReport
from repro.sim.timing import cycles_for_run
from repro.trace.branch_model import BranchModelMap
from repro.trace.events import LineEventTrace
from repro.trace.executor import CfgWalker
from repro.trace.fetch import line_events_from_block_trace

__all__ = ["Simulator", "resolve_engine", "scheme_options", "simulate"]

#: Replay engine choices: ``auto`` uses a vectorized kernel when one exists
#: and falls back to the reference scheme; ``vector`` demands the kernel
#: (raising when there is none); ``reference`` always runs the pure-Python
#: scheme objects; ``batch`` behaves like ``auto`` for a single replay but
#: additionally lets the grid planner coalesce cells sharing a trace into
#: one batched traversal (see :mod:`repro.engine.batch`); ``differential``
#: extends ``batch`` by replaying threshold-sweep families with
#: delta-driven adjacent-config state sharing
#: (see :mod:`repro.engine.differential`).
_ENGINES = ("auto", "vector", "reference", "batch", "differential")


def resolve_engine(engine: Optional[str]) -> str:
    """Validate an engine name, defaulting to ``$REPRO_ENGINE`` then ``auto``."""
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE", "auto")
    if engine not in _ENGINES:
        raise SchemeError(
            f"unknown replay engine {engine!r}; choose from {', '.join(_ENGINES)}"
        )
    return engine


# Backwards-compatible alias (pre-batch-engine name).
_resolve_engine = resolve_engine


def scheme_options(
    machine: MachineConfig,
    scheme: str,
    wpa_size: int = 0,
    same_line_skip: Optional[bool] = None,
    l0_size: int = 512,
    memo_invalidation: str = "exact",
) -> dict:
    """The validated option dict a scheme constructor/kernel takes.

    This is the single place the (machine, cell) -> scheme-options mapping
    lives: ``Simulator.run_events`` uses it per replay and the batch planner
    uses it to decide family membership (an option set the batched kernel
    does not model keeps the cell on the per-cell engines).
    """
    options: dict = {
        "itlb_entries": machine.itlb_entries,
        "page_size": machine.page_size,
    }
    if scheme == "way-placement":
        if wpa_size % machine.page_size:
            raise SchemeError(
                f"way-placement area ({wpa_size}B) must be a multiple of "
                f"the page size ({machine.page_size}B)"
            )
        options["wpa_size"] = wpa_size
    elif wpa_size:
        raise SchemeError(f"scheme {scheme!r} does not take a way-placement area")
    if scheme == "filter-cache":
        options["l0_size"] = l0_size
    elif same_line_skip is not None:
        options["same_line_skip"] = same_line_skip
    if scheme == "way-memoization":
        options["invalidation"] = memo_invalidation
    return options


class Simulator:
    """Reusable driver bound to a machine configuration and energy params."""

    def __init__(
        self,
        machine: MachineConfig = XSCALE_BASELINE,
        energy_params: Optional[EnergyParams] = None,
        organisation: str = "cam",
        engine: Optional[str] = None,
        sanitize: bool = False,
    ):
        self.machine = machine
        self.energy_params = (
            energy_params if energy_params is not None else EnergyParams()
        )
        self.organisation = organisation
        self.engine = resolve_engine(engine)
        self.sanitize = sanitize
        self._processor_model = ProcessorEnergyModel(self.energy_params)

    def run_events(
        self,
        events: LineEventTrace,
        scheme: str,
        benchmark: str = "unnamed",
        layout_description: str = "",
        wpa_size: int = 0,
        same_line_skip: Optional[bool] = None,
        l0_size: int = 512,
        mem_fraction: float = 0.25,
        memo_invalidation: str = "exact",
    ) -> SimulationReport:
        """Replay ``events`` under ``scheme`` and price the activity.

        ``mem_fraction`` is the workload's dynamic load/store share, used by
        the rest-of-core energy term (see ``ProcessorEnergyModel``).
        """
        machine = self.machine
        options = scheme_options(
            machine,
            scheme,
            wpa_size=wpa_size,
            same_line_skip=same_line_skip,
            l0_size=l0_size,
            memo_invalidation=memo_invalidation,
        )

        counters = None
        if self.engine != "reference" and scheme in FAST_SCHEMES:
            # Chaos hook: lets the fault-injection harness fail the
            # vectorized path specifically, exercising the supervisor's
            # degrade-to-reference fallback (no-op unless chaos is active).
            chaos_point("kernel", f"{benchmark}:{scheme}")
            counters = fast_counters(scheme, events, machine.icache, **options)
            if counters is not None and self.sanitize:
                # Fast path: the kernels keep no live state to inspect, so
                # the sanitizer re-derives the invariants from the arrays.
                from repro.verify.sanitizer import raise_if_violations, sanitize_counters

                raise_if_violations(
                    sanitize_counters(scheme, events, machine.icache, counters, options),
                    scheme,
                )
        if counters is None:
            if self.engine == "vector":
                raise SchemeError(
                    f"scheme {scheme!r} with options {sorted(options)} has no "
                    "vectorized kernel; use engine='auto' or 'reference'"
                )
            fetch_scheme = make_scheme(scheme, machine.icache, **options)
            if self.sanitize:
                from repro.verify.sanitizer import SanitizerHook

                counters = SanitizerHook(fetch_scheme).run(events)
            else:
                counters = fetch_scheme.run(events)

        return self.price(
            counters,
            scheme,
            benchmark=benchmark,
            layout_description=layout_description,
            wpa_size=wpa_size,
            l0_size=l0_size,
            mem_fraction=mem_fraction,
        )

    def price(
        self,
        counters,
        scheme: str,
        benchmark: str = "unnamed",
        layout_description: str = "",
        wpa_size: int = 0,
        l0_size: int = 512,
        mem_fraction: float = 0.25,
    ) -> SimulationReport:
        """Price already-computed counters into a :class:`SimulationReport`.

        The pricing tail of :meth:`run_events`, factored out so the batched
        replay path (:mod:`repro.engine.batch`, which produces counters for
        a whole family at once) shares the energy/cycle models and the
        sanitizer's energy cross-check with the per-cell paths.
        """
        machine = self.machine
        cache_model = CacheEnergyModel(
            machine.icache,
            self.energy_params,
            organisation=self.organisation,
            memo_links=(scheme == "way-memoization"),
            wayhint=(scheme == "way-placement"),
            l0_size=l0_size if scheme == "filter-cache" else 0,
        )
        breakdown = cache_model.energy(counters)
        if self.sanitize:
            from repro.verify.sanitizer import check_energy, raise_if_violations

            raise_if_violations(check_energy(counters, breakdown, cache_model), scheme)
        cycles = cycles_for_run(counters, machine)
        processor = self._processor_model.report(
            counters, breakdown, cycles, mem_fraction
        )

        return SimulationReport(
            benchmark=benchmark,
            scheme=scheme,
            layout_description=layout_description,
            geometry=machine.icache,
            wpa_size=wpa_size if scheme == "way-placement" else 0,
            counters=counters,
            cycles=cycles,
            breakdown=breakdown,
            processor=processor,
        )


def simulate(
    program: Program,
    layout: Layout,
    scheme: str,
    branch_models: BranchModelMap,
    max_instructions: int,
    machine: MachineConfig = XSCALE_BASELINE,
    energy_params: Optional[EnergyParams] = None,
    wpa_size: int = 0,
    seed: int = 0,
    organisation: str = "cam",
    same_line_skip: Optional[bool] = None,
    engine: Optional[str] = None,
) -> SimulationReport:
    """One-shot convenience: walk, expand, replay, price."""
    from repro.profiling.profiler import dynamic_memory_fraction

    walker = CfgWalker(program, branch_models, seed=seed)
    block_trace = walker.walk(max_instructions)
    events = line_events_from_block_trace(
        block_trace, program, layout, machine.icache.line_size
    )
    simulator = Simulator(machine, energy_params, organisation, engine=engine)
    return simulator.run_events(
        events,
        scheme,
        benchmark=program.name,
        layout_description=layout.description,
        wpa_size=wpa_size,
        same_line_skip=same_line_skip,
        mem_fraction=dynamic_memory_fraction(program, block_trace),
    )
