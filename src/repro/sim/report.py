"""Result containers for simulation runs and their normalised forms."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.access import FetchCounters
from repro.cache.geometry import CacheGeometry
from repro.energy.cache_model import EnergyBreakdown
from repro.energy.processor import ProcessorReport
from repro.errors import ExperimentError

__all__ = ["SimulationReport", "NormalisedResult"]


@dataclass(frozen=True)
class SimulationReport:
    """Everything one (benchmark, layout, scheme, machine) run produced."""

    benchmark: str
    scheme: str
    layout_description: str
    geometry: CacheGeometry
    wpa_size: int
    counters: FetchCounters
    cycles: int
    breakdown: EnergyBreakdown
    processor: ProcessorReport

    @property
    def icache_energy_pj(self) -> float:
        return self.breakdown.icache_pj

    @property
    def processor_energy_pj(self) -> float:
        return self.processor.processor_pj

    def normalise(self, baseline: "SimulationReport") -> "NormalisedResult":
        """This run relative to ``baseline`` (same benchmark & geometry)."""
        if baseline.benchmark != self.benchmark:
            raise ExperimentError(
                f"normalising {self.benchmark!r} against baseline of "
                f"{baseline.benchmark!r}"
            )
        if baseline.geometry != self.geometry:
            raise ExperimentError(
                "normalising against a baseline with a different cache geometry"
            )
        return NormalisedResult(
            benchmark=self.benchmark,
            scheme=self.scheme,
            wpa_size=self.wpa_size,
            icache_energy=self.processor.normalised_icache_energy(baseline.processor),
            delay=self.processor.normalised_delay(baseline.processor),
            ed_product=self.processor.ed_product(baseline.processor),
        )


@dataclass(frozen=True)
class NormalisedResult:
    """A scheme's result normalised to the baseline run (the paper's unit)."""

    benchmark: str
    scheme: str
    wpa_size: int
    icache_energy: float  # fraction of baseline I-cache energy (paper: %)
    delay: float  # fraction of baseline run time
    ed_product: float  # normalised processor energy x delay

    @property
    def icache_energy_pct(self) -> float:
        return 100.0 * self.icache_energy

    @property
    def energy_saving_pct(self) -> float:
        return 100.0 * (1.0 - self.icache_energy)
