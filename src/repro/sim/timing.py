"""Timing model: cycles from fetch counters.

The paper reports "no change in performance" between schemes, because all
of them serve hits at full speed; cycle counts differ only through

* instruction cache misses (memory latency per line fetch),
* I-TLB misses (page-walk penalty),
* corrective second accesses (way-hint false positives, way-prediction
  mispredicts, filter-cache misses) at one cycle each.

The base pipeline retires one instruction per cycle (single-issue in-order,
Table 1); a constant per-run pipeline fill is ignored as it vanishes in the
normalisation.
"""

from __future__ import annotations

from repro.cache.access import FetchCounters
from repro.sim.machine import MachineConfig

__all__ = ["cycles_for_run"]


def cycles_for_run(counters: FetchCounters, machine: MachineConfig) -> int:
    """Total cycles for a simulated run on ``machine``."""
    cycles = counters.fetches  # base CPI of 1
    cycles += counters.misses * machine.memory_latency_cycles
    cycles += counters.itlb_misses * machine.itlb_miss_cycles
    # Schemes record one penalty cycle per corrective access themselves;
    # scale if the machine charges more than one cycle for it.
    cycles += counters.extra_access_cycles * machine.hint_mispredict_cycles
    return cycles
