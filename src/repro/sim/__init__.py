"""Top-level simulation: machine configuration, timing, and the driver."""

from repro.sim.machine import MachineConfig, XSCALE_BASELINE, table1_rows
from repro.sim.timing import cycles_for_run
from repro.sim.report import SimulationReport, NormalisedResult
from repro.sim.simulator import Simulator, simulate
from repro.sim.dcache import DcacheResult, simulate_dcache, refined_processor_energy

__all__ = [
    "MachineConfig",
    "XSCALE_BASELINE",
    "table1_rows",
    "cycles_for_run",
    "SimulationReport",
    "NormalisedResult",
    "Simulator",
    "simulate",
    "DcacheResult",
    "simulate_dcache",
    "refined_processor_energy",
]
