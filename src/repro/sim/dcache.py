"""Data-cache refinement: simulate Table 1's D-cache explicitly.

The headline energy model prices memory operations with a calibrated flat
term; this module replaces that term with a real simulation of the 32KB
32-way CAM D-cache over a synthetic data stream, for the D-cache ablation
bench.  :func:`refined_processor_energy` recomputes whole-processor energy
with the explicit D-cache so the bench can check the headline conclusions
are insensitive to the simplification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.access import FetchCounters
from repro.energy.cache_model import CacheEnergyModel, EnergyBreakdown
from repro.energy.params import EnergyParams
from repro.schemes.baseline import BaselineScheme
from repro.sim.machine import MachineConfig, XSCALE_BASELINE
from repro.sim.report import SimulationReport
from repro.trace.events import LineEventTrace
from repro.workloads.data_model import DataSpec, synthesize_data_events

__all__ = ["DcacheResult", "simulate_dcache", "refined_processor_energy"]


@dataclass(frozen=True)
class DcacheResult:
    """Outcome of one D-cache simulation."""

    counters: FetchCounters
    breakdown: EnergyBreakdown
    stall_cycles: int

    @property
    def energy_pj(self) -> float:
        return self.breakdown.fetch_path_pj

    @property
    def miss_rate(self) -> float:
        return self.counters.fetch_miss_rate


def simulate_dcache(
    data_events: LineEventTrace,
    machine: MachineConfig = XSCALE_BASELINE,
    params: EnergyParams = EnergyParams(),
) -> DcacheResult:
    """Run the data stream through the machine's D-cache and price it.

    The XScale D-cache is CAM-organised like the I-cache, so every access
    performs a full sub-bank search (no same-line elision on the data side:
    data accesses do not stream line-sequentially the way fetch does).
    Misses stall the blocking in-order pipeline for the memory latency.
    """
    scheme = BaselineScheme(
        machine.dcache,
        itlb_entries=machine.dtlb_entries,
        page_size=machine.page_size,
        same_line_skip=False,
    )
    counters = scheme.run(data_events)
    model = CacheEnergyModel(machine.dcache, params)
    breakdown = model.energy(counters)
    stall_cycles = counters.misses * machine.memory_latency_cycles
    return DcacheResult(
        counters=counters, breakdown=breakdown, stall_cycles=stall_cycles
    )


def refined_processor_energy(
    report: SimulationReport,
    dcache: DcacheResult,
    mem_fraction: float,
    params: EnergyParams = EnergyParams(),
) -> float:
    """Whole-processor energy with the explicit D-cache model.

    Replaces the flat ``mem_op_extra_pj`` term with the simulated D-cache
    energy (address generation and write buffers keep a small residual flat
    share), leaving the fetch path and base core untouched.
    """
    instructions = report.counters.fetches
    residual_lsu_pj = 0.15 * params.mem_op_extra_pj  # AGU + buffers
    core_pj = (
        instructions * params.core_pj_per_instruction
        + instructions * mem_fraction * residual_lsu_pj
        + (report.cycles + dcache.stall_cycles) * params.core_pj_per_cycle
    )
    return report.breakdown.fetch_path_pj + dcache.energy_pj + core_pj


def data_accesses_for_run(report: SimulationReport, mem_fraction: float) -> int:
    """How many data accesses the run's instruction stream implies."""
    return int(report.counters.fetches * mem_fraction)


def make_data_events(
    spec: DataSpec,
    report: SimulationReport,
    mem_fraction: float,
    line_size: int = 32,
) -> LineEventTrace:
    """Convenience: a data stream sized to match one simulated run."""
    return synthesize_data_events(
        spec, data_accesses_for_run(report, mem_fraction), line_size
    )
